//! Microbenchmarks of the estimation substrate: ±1 hashing, atomic-sketch
//! updates and productivity estimation — the per-tuple costs behind the
//! paper's "fast-and-light" claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mstream_core::mstream_sketch::kernel;
use mstream_core::mstream_sketch::signs::combine_packed_signs;
use mstream_core::mstream_sketch::{
    FourWiseHash, SignCache, SignFamilies, SketchBank, TumblingSketches,
};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain3() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(500),
    )
    .unwrap()
}

fn bench_hash(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let h = FourWiseHash::random(&mut rng);
    c.bench_function("four_wise_sign", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(h.sign(black_box(x)))
        })
    });
}

fn bench_bank_update(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("sketch_bank_update");
    for s1 in [100usize, 1000] {
        let mut bank = SketchBank::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 2,
            },
        );
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                bank.update(StreamId(1), &[Value(v), Value(v % 7)]);
            })
        });
    }
    group.finish();
}

fn bench_productivity(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("productivity_estimate");
    for s1 in [100usize, 1000] {
        let mut sk = TumblingSketches::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 3,
            },
            EpochSpec::Time(VDur::from_secs(500)),
        );
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let s = StreamId(rng.gen_range(0..3));
            sk.observe(
                s,
                &[Value(rng.gen_range(0..100)), Value(rng.gen_range(0..100))],
                VTime::ZERO,
            );
        }
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]))
            })
        });
    }
    group.finish();
}

/// The packed-sign kernels in isolation: one full polynomial sweep over
/// 1000 copies, the XOR combine with every lookup missing the memo, and
/// the same combine served entirely from memoized vectors.
fn bench_packed_signs(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let families = SignFamilies::draw(&mut rng, 2, 1000);
    let incidence = [(0usize, 0usize), (1usize, 1usize)];
    let mut out = Vec::new();
    let mut group = c.benchmark_group("packed_signs");
    group.bench_function("eval_1000_copies", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            families.eval_packed_into(0, black_box(x), &mut out);
            black_box(&out);
        })
    });
    let mut cold_cache = SignCache::default();
    group.bench_function("xor_combine_cold", |b| {
        let mut x = 0u64;
        b.iter(|| {
            // Always-fresh values: every lookup evaluates (and the bounded
            // memo periodically generation-resets — that cost is part of
            // the cold path).
            x = x.wrapping_add(1);
            combine_packed_signs(
                &families,
                &mut cold_cache,
                &incidence,
                &[Value(x), Value(x ^ 0xFFFF)],
                &mut out,
            );
            black_box(&out);
        })
    });
    let mut hot_cache = SignCache::default();
    group.bench_function("xor_combine_cached", |b| {
        let mut x = 0u64;
        b.iter(|| {
            // A 64-value hot set: after one lap everything is memoized, so
            // the combine is two map hits and 16 XOR'd words.
            x = (x + 1) % 64;
            combine_packed_signs(
                &families,
                &mut hot_cache,
                &incidence,
                &[Value(x), Value(x + 1000)],
                &mut out,
            );
            black_box(&out);
        })
    });
    group.finish();
}

/// Productivity at the paper's sizing (`s1 = 1000`) over a Zipfian value
/// pool, past the first epoch rollover — the steady-state hot path the
/// engine pays on every arrival and on every rollover rebuild: a memoized
/// packed-sign lookup plus a signed sum over a frozen cross-product row.
fn bench_productivity_repeated(c: &mut Criterion) {
    let query = chain3();
    let mut sk = TumblingSketches::new(
        &query,
        BankConfig {
            s1: 1000,
            s2: 1,
            seed: 6,
        },
        EpochSpec::Time(VDur::from_secs(100)),
    );
    // Zipf-like pool: value v drawn with weight ~ 1/(v+1) over 50 values.
    let mut pool: Vec<u64> = Vec::new();
    for v in 0..50u64 {
        for _ in 0..(50 / (v + 1)) {
            pool.push(v);
        }
    }
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3000 {
        let s = StreamId(rng.gen_range(0..3));
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        sk.observe(s, &[Value(a), Value(b)], VTime::ZERO);
    }
    // Cross the epoch boundary: every stream now has a last-epoch snapshot,
    // so queries run the frozen-cross-product path.
    sk.observe(StreamId(0), &[Value(0), Value(0)], VTime::from_secs(150));
    let mut group = c.benchmark_group("productivity_repeated_zipf");
    let mut i = 0usize;
    group.bench_function("s1_1000_frozen", |b| {
        b.iter(|| {
            i = (i + 1) % pool.len();
            black_box(sk.productivity(StreamId(0), &[Value(pool[i]), Value(0)]))
        })
    });
    group.finish();
}

/// The epoch-memoized productivity score cache (DESIGN.md §16) on the
/// frozen cross-product path at the paper's sizing (`s1 = 1000`): a hot
/// 50-key working set served from the memo, an always-fresh key stream
/// paying the miss-and-insert cost (with the bounded table's periodic
/// wholesale clears), and the same hot set with the cache pinned off —
/// the raw signed-fold every lookup would pay without memoization.
fn bench_score_cache(c: &mut Criterion) {
    let query = chain3();
    let mut seed_sketches = || {
        let mut sk = TumblingSketches::new(
            &query,
            BankConfig {
                s1: 1000,
                s2: 1,
                seed: 9,
            },
            EpochSpec::Time(VDur::from_secs(100)),
        );
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..3000 {
            let s = StreamId(rng.gen_range(0..3));
            sk.observe(
                s,
                &[
                    Value(rng.gen_range(0..50)),
                    Value(rng.gen_range(0..50)),
                ],
                VTime::ZERO,
            );
        }
        // Cross the epoch boundary so every probe runs the frozen
        // cross-product path — the one the memo covers.
        sk.observe(StreamId(0), &[Value(0), Value(0)], VTime::from_secs(150));
        sk
    };
    let mut group = c.benchmark_group("score_cache");
    {
        let mut sk = seed_sketches();
        sk.set_score_cache(true);
        // Warm the memo: one lap over the working set.
        for v in 0..50u64 {
            black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]));
        }
        let mut v = 0u64;
        group.bench_function("hit", |b| {
            b.iter(|| {
                v = (v + 1) % 50;
                black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]))
            })
        });
    }
    {
        let mut sk = seed_sketches();
        sk.set_score_cache(true);
        let mut x = 0u64;
        group.bench_function("miss", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(sk.productivity(StreamId(0), &[Value(x), Value(0)]))
            })
        });
    }
    {
        let mut sk = seed_sketches();
        sk.set_score_cache(false);
        let mut v = 0u64;
        group.bench_function("uncached", |b| {
            b.iter(|| {
                v = (v + 1) % 50;
                black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]))
            })
        });
    }
    group.finish();
}

/// Vector-vs-scalar on the raw kernels, every mode the build supports:
/// the pinned scalar reference, the lane-parallel safe form, the AVX2
/// sign specializations when the host has them, and the dispatched entry
/// point the engine actually calls. Each input is asserted bit-identical
/// across modes before timing (the equivalence proptests own the
/// exhaustive version of that claim).
fn bench_kernel_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    const N: usize = 16 * 1024;
    let signs: Vec<u64> = (0..N / 64).map(|_| rng.gen()).collect();
    let f64s: Vec<f64> = (0..N).map(|_| rng.gen::<f64>() - 0.5).collect();
    let i64s: Vec<i64> = (0..N).map(|_| (rng.gen::<u64>() as i64) >> 8).collect();

    let mut group = c.benchmark_group("kernel_modes");
    // fold_packed_signs: ±1 folds into i64 counters.
    {
        let mut want = i64s.clone();
        kernel::scalar::fold_packed_signs(&signs, &mut want);
        let mut got = i64s.clone();
        kernel::lanes::fold_packed_signs(&signs, &mut got);
        assert_eq!(want, got, "fold_packed_signs modes diverge");
        let mut buf = i64s.clone();
        group.bench_function("fold_signs_scalar", |b| {
            b.iter(|| {
                buf.copy_from_slice(&i64s);
                kernel::scalar::fold_packed_signs(black_box(&signs), &mut buf);
                black_box(&buf);
            })
        });
        group.bench_function("fold_signs_lanes", |b| {
            b.iter(|| {
                buf.copy_from_slice(&i64s);
                kernel::lanes::fold_packed_signs(black_box(&signs), &mut buf);
                black_box(&buf);
            })
        });
    }
    // signed_copy: sign-bit XOR while copying (the probe row kernel).
    {
        let mut want = vec![0f64; N];
        kernel::scalar::signed_copy(&signs, &f64s, &mut want);
        let mut got = vec![0f64; N];
        kernel::signed_copy(&signs, &f64s, &mut got);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&want), bits(&got), "signed_copy modes diverge");
        let mut dst = vec![0f64; N];
        group.bench_function("signed_copy_scalar", |b| {
            b.iter(|| {
                kernel::scalar::signed_copy(black_box(&signs), black_box(&f64s), &mut dst);
                black_box(&dst);
            })
        });
        group.bench_function("signed_copy_lanes", |b| {
            b.iter(|| {
                kernel::lanes::signed_copy(black_box(&signs), black_box(&f64s), &mut dst);
                black_box(&dst);
            })
        });
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            group.bench_function("signed_copy_avx2", |b| {
                b.iter(|| {
                    kernel::avx2::signed_copy(black_box(&signs), black_box(&f64s), &mut dst);
                    black_box(&dst);
                })
            });
        }
    }
    // group_sums: the mean stage of median-of-means (serial in-group
    // order, lanes across groups).
    {
        let (s1, s2) = (32usize, N / 32);
        let mut want = Vec::new();
        kernel::scalar::group_sums(&f64s, s1, s2, &mut want);
        let mut got = Vec::new();
        kernel::lanes::group_sums(&f64s, s1, s2, &mut got);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&want), bits(&got), "group_sums modes diverge");
        let mut out = Vec::new();
        group.bench_function("group_sums_scalar", |b| {
            b.iter(|| {
                out.clear();
                kernel::scalar::group_sums(black_box(&f64s), s1, s2, &mut out);
                black_box(&out);
            })
        });
        group.bench_function("group_sums_lanes", |b| {
            b.iter(|| {
                out.clear();
                kernel::lanes::group_sums(black_box(&f64s), s1, s2, &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_bank_update,
    bench_productivity,
    bench_packed_signs,
    bench_productivity_repeated,
    bench_score_cache,
    bench_kernel_modes
);
criterion_main!(benches);
