//! Microbenchmarks of the estimation substrate: ±1 hashing, atomic-sketch
//! updates and productivity estimation — the per-tuple costs behind the
//! paper's "fast-and-light" claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mstream_core::mstream_sketch::{FourWiseHash, SketchBank, TumblingSketches};
use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain3() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(500),
    )
    .unwrap()
}

fn bench_hash(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let h = FourWiseHash::random(&mut rng);
    c.bench_function("four_wise_sign", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(h.sign(black_box(x)))
        })
    });
}

fn bench_bank_update(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("sketch_bank_update");
    for s1 in [100usize, 1000] {
        let mut bank = SketchBank::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 2,
            },
        );
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                bank.update(StreamId(1), &[Value(v), Value(v % 7)]);
            })
        });
    }
    group.finish();
}

fn bench_productivity(c: &mut Criterion) {
    let query = chain3();
    let mut group = c.benchmark_group("productivity_estimate");
    for s1 in [100usize, 1000] {
        let mut sk = TumblingSketches::new(
            &query,
            BankConfig {
                s1,
                s2: 1,
                seed: 3,
            },
            EpochSpec::Time(VDur::from_secs(500)),
        );
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let s = StreamId(rng.gen_range(0..3));
            sk.observe(
                s,
                &[Value(rng.gen_range(0..100)), Value(rng.gen_range(0..100))],
                VTime::ZERO,
            );
        }
        let mut v = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                v = (v + 1) % 100;
                black_box(sk.productivity(StreamId(0), &[Value(v), Value(0)]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash, bench_bank_update, bench_productivity);
criterion_main!(benches);
