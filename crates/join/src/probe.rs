//! N-way probe execution against window stores.
//!
//! The probe kernel is iterative (an explicit frame stack instead of
//! recursion) and hoists everything loop-invariant out of the candidate
//! loops: each step's drive value and its residual-predicate left-hand
//! values are computed once per frame, not re-derived through a
//! `bound_value` call per candidate, and a candidate tuple is dereferenced
//! only when the step actually has residual checks. The 2- and 3-stream
//! shapes the benchmarks exercise get specialized fast paths (single-step,
//! two-step star, two-step chain); plans with residual predicates or more
//! steps run the general kernel. All variants enumerate matches in exactly
//! the order of the original recursive kernel ([`probe_each_recursive`],
//! kept for differential tests), so results are bit-identical.

use crate::plan::{PlanStep, ProbePlan};
use mstream_types::{StreamId, Tuple, Value};
use mstream_window::{Slot, WindowStore};

/// Resolves a query-local stream id to the window store backing it.
///
/// The single-query engines keep their stores in a dense `Vec` indexed by
/// stream, so a plain slice implements this directly. The multi-query
/// engine owns one store table shared by all registered queries and hands
/// each query a *mapped* view (query-local stream `k` → some shared store),
/// which is why [`Bindings`] reads tuples through this trait instead of
/// indexing a slice.
pub trait StoreLookup {
    /// The window store holding tuples of query-local stream `stream`.
    fn store(&self, stream: StreamId) -> &WindowStore;
}

impl StoreLookup for &[WindowStore] {
    #[inline]
    fn store(&self, stream: StreamId) -> &WindowStore {
        &self[stream.index()]
    }
}

/// A zero-copy view of one join match: the arriving tuple plus one bound
/// window tuple per other stream.
pub struct Bindings<'a> {
    origin: StreamId,
    origin_tuple: &'a Tuple,
    /// `slots[k]` = the bound window slot of stream `k` (`None` for the
    /// origin stream).
    slots: &'a [Option<Slot>],
    stores: &'a dyn StoreLookup,
}

impl<'a> Bindings<'a> {
    /// Assembles a match view from raw parts. Engine-internal: consumers
    /// receive `Bindings` from probe callbacks; only join executors (the
    /// probe kernels here and the multi-query trie walker) construct them.
    #[doc(hidden)]
    pub fn from_parts(
        origin: StreamId,
        origin_tuple: &'a Tuple,
        slots: &'a [Option<Slot>],
        stores: &'a dyn StoreLookup,
    ) -> Self {
        Bindings {
            origin,
            origin_tuple,
            slots,
            stores,
        }
    }

    /// The value of `attr` on `stream` within this match.
    pub fn value(&self, stream: StreamId, attr: usize) -> Value {
        if stream == self.origin {
            self.origin_tuple.values[attr]
        } else {
            let slot = self.slots[stream.index()].expect("stream bound in match");
            self.stores
                .store(stream)
                .tuple(slot)
                .expect("bound slot is live")
                .values[attr]
        }
    }

    /// The bound window slot of `stream` (`None` for the origin stream).
    pub fn slot(&self, stream: StreamId) -> Option<Slot> {
        self.slots[stream.index()]
    }

    /// The full bound tuple of `stream` (the arriving tuple for the origin
    /// stream). Lets consumers identify matches by arrival identity — e.g.
    /// the differential audit harness keys result rows on per-stream
    /// sequence numbers.
    pub fn tuple(&self, stream: StreamId) -> &Tuple {
        if stream == self.origin {
            self.origin_tuple
        } else {
            let slot = self.slots[stream.index()].expect("stream bound in match");
            self.stores
                .store(stream)
                .tuple(slot)
                .expect("bound slot is live")
        }
    }

    /// The arrival sequence number of the tuple bound on `stream`.
    pub fn seq(&self, stream: StreamId) -> mstream_types::SeqNo {
        self.tuple(stream).seq
    }

    /// The arriving tuple that triggered this probe.
    pub fn origin_tuple(&self) -> &Tuple {
        self.origin_tuple
    }

    /// The arriving tuple's stream.
    pub fn origin(&self) -> StreamId {
        self.origin
    }

    /// Number of streams participating in the match (the query's stream
    /// count).
    pub fn n_streams(&self) -> usize {
        self.slots.len()
    }
}

/// Enumerates every combination of window tuples joining with
/// `origin_tuple`, invoking `on_match` per combination. Returns the count.
///
/// `stores[k]` must be the window of stream `k`; the origin's own store is
/// never probed (the paper's operator probes *before* inserting the
/// arriving tuple into its window).
pub fn probe_each<F: FnMut(&Bindings<'_>)>(
    plan: &ProbePlan,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    mut on_match: F,
) -> u64 {
    debug_assert_eq!(plan.origin(), origin_tuple.stream);
    let steps = plan.steps();
    let origin = plan.origin();
    let mut slots: Vec<Option<Slot>> = vec![None; stores.len()];
    match steps {
        [] => {
            on_match(&Bindings {
                origin,
                origin_tuple,
                slots: &slots,
                stores: &stores,
            });
            1
        }
        [step] => probe_1(step, origin, origin_tuple, stores, &mut slots, &mut on_match),
        [s0, s1] if s0.residual.is_empty() && s1.residual.is_empty() => {
            probe_2(s0, s1, origin, origin_tuple, stores, &mut slots, &mut on_match)
        }
        _ => probe_n(steps, origin, origin_tuple, stores, &mut slots, &mut on_match),
    }
}

/// Counts join combinations without inspecting them.
pub fn probe_count(plan: &ProbePlan, origin_tuple: &Tuple, stores: &[WindowStore]) -> u64 {
    probe_each(plan, origin_tuple, stores, |_| {})
}

/// Single probe step (2-stream query). The drive value comes straight off
/// the arriving tuple; candidates need dereferencing only when residual
/// predicates exist (and their left-hand values are hoisted — at step 0
/// only the origin is bound).
fn probe_1<F: FnMut(&Bindings<'_>)>(
    step: &PlanStep,
    origin: StreamId,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    slots: &mut [Option<Slot>],
    on_match: &mut F,
) -> u64 {
    debug_assert_eq!(step.drive_stream, origin, "step 0 is driven by the origin");
    let store = &stores[step.stream.index()];
    let cands = store.probe(step.probe_attr, origin_tuple.values[step.drive_attr]);
    let si = step.stream.index();
    let mut count = 0u64;
    if step.residual.is_empty() {
        let (head, tail) = cands.parts();
        for part in [head, tail] {
            for &slot in part {
                slots[si] = Some(slot);
                count += 1;
                on_match(&Bindings {
                    origin,
                    origin_tuple,
                    slots,
                    stores: &stores,
                });
            }
        }
    } else {
        // Residual left-hand sides are all origin attributes here: hoist.
        let res: Vec<(Value, usize)> = step
            .residual
            .iter()
            .map(|&(bs, ba, ca)| {
                debug_assert_eq!(bs, origin);
                (origin_tuple.values[ba], ca)
            })
            .collect();
        for slot in cands.iter() {
            let t = store.tuple(slot).expect("probed slot is live");
            if res.iter().all(|&(v, ca)| t.values[ca] == v) {
                slots[si] = Some(slot);
                count += 1;
                on_match(&Bindings {
                    origin,
                    origin_tuple,
                    slots,
                    stores: &stores,
                });
            }
        }
    }
    slots[si] = None;
    count
}

/// Two residual-free probe steps (3-stream acyclic query). Star shapes
/// (both steps driven by the origin) hoist the second candidate list out of
/// the outer loop entirely; chain shapes dereference the outer candidate
/// once for its drive value and never touch the inner candidates' tuples.
fn probe_2<F: FnMut(&Bindings<'_>)>(
    s0: &PlanStep,
    s1: &PlanStep,
    origin: StreamId,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    slots: &mut [Option<Slot>],
    on_match: &mut F,
) -> u64 {
    debug_assert_eq!(s0.drive_stream, origin, "step 0 is driven by the origin");
    let store0 = &stores[s0.stream.index()];
    let store1 = &stores[s1.stream.index()];
    let c0 = store0.probe(s0.probe_attr, origin_tuple.values[s0.drive_attr]);
    let (i0, i1) = (s0.stream.index(), s1.stream.index());
    let mut count = 0u64;
    if s1.drive_stream == origin {
        // Star: the inner candidate list does not depend on the outer slot.
        let c1 = store1.probe(s1.probe_attr, origin_tuple.values[s1.drive_attr]);
        if !c1.is_empty() {
            for slot0 in c0.iter() {
                slots[i0] = Some(slot0);
                for slot1 in c1.iter() {
                    slots[i1] = Some(slot1);
                    count += 1;
                    on_match(&Bindings {
                        origin,
                        origin_tuple,
                        slots,
                        stores: &stores,
                    });
                }
            }
        }
    } else {
        // Chain: the inner probe is keyed by the outer candidate's tuple.
        debug_assert_eq!(s1.drive_stream, s0.stream, "drive stream bound at step 0");
        for slot0 in c0.iter() {
            let t0 = store0.tuple(slot0).expect("probed slot is live");
            let c1 = store1.probe(s1.probe_attr, t0.values[s1.drive_attr]);
            if c1.is_empty() {
                continue;
            }
            slots[i0] = Some(slot0);
            for slot1 in c1.iter() {
                slots[i1] = Some(slot1);
                count += 1;
                on_match(&Bindings {
                    origin,
                    origin_tuple,
                    slots,
                    stores: &stores,
                });
            }
        }
    }
    slots[i0] = None;
    slots[i1] = None;
    count
}

/// One suspended enumeration level of the general kernel: a step's
/// candidate list (inline head + spill tail), the resume cursor, and where
/// this step's hoisted residual values start in the shared scratch.
struct Frame<'a> {
    head: &'a [Slot],
    tail: &'a [Slot],
    cursor: usize,
    res_base: usize,
}

impl<'a> Frame<'a> {
    #[inline]
    fn next(&mut self) -> Option<Slot> {
        let c = self.cursor;
        self.cursor += 1;
        if c < self.head.len() {
            Some(self.head[c])
        } else {
            self.tail.get(c - self.head.len()).copied()
        }
    }
}

/// The general iterative kernel: an explicit depth-first frame stack over
/// the plan's steps. Entering a frame computes the step's drive value and
/// hoists its residual left-hand values once; the candidate loop then only
/// dereferences tuples for steps that actually carry residual checks.
fn probe_n<F: FnMut(&Bindings<'_>)>(
    steps: &[PlanStep],
    origin: StreamId,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    slots: &mut [Option<Slot>],
    on_match: &mut F,
) -> u64 {
    let mut count = 0u64;
    let mut frames: Vec<Frame<'_>> = Vec::with_capacity(steps.len());
    // Hoisted residual `(left-hand value, candidate attr)` pairs for all
    // active frames; `res_base` marks each frame's span.
    let mut res: Vec<(Value, usize)> = Vec::new();
    let enter = |step: &PlanStep,
                 slots: &[Option<Slot>],
                 res: &mut Vec<(Value, usize)>|
     -> Frame<'_> {
        let drive = bound_value(
            origin,
            origin_tuple,
            stores,
            slots,
            step.drive_stream,
            step.drive_attr,
        );
        let res_base = res.len();
        for &(bs, ba, ca) in &step.residual {
            res.push((
                bound_value(origin, origin_tuple, stores, slots, bs, ba),
                ca,
            ));
        }
        let (head, tail) = stores[step.stream.index()]
            .probe(step.probe_attr, drive)
            .parts();
        Frame {
            head,
            tail,
            cursor: 0,
            res_base,
        }
    };
    frames.push(enter(&steps[0], slots, &mut res));
    while let Some(depth) = frames.len().checked_sub(1) {
        let step = &steps[depth];
        let store = &stores[step.stream.index()];
        if depth + 1 == steps.len() {
            // Innermost level: every surviving candidate is a match — drain
            // the whole frame in one tight loop (last frames are always
            // fresh, so the cursor is at 0) instead of a stack round-trip
            // per match.
            let f = frames.last().expect("frame at current depth");
            let rvals = &res[f.res_base..];
            let si = step.stream.index();
            for part in [f.head, f.tail] {
                for &slot in part {
                    if !rvals.is_empty() {
                        let t = store.tuple(slot).expect("probed slot is live");
                        if !rvals.iter().all(|&(v, ca)| t.values[ca] == v) {
                            continue;
                        }
                    }
                    slots[si] = Some(slot);
                    count += 1;
                    on_match(&Bindings {
                        origin,
                        origin_tuple,
                        slots,
                        stores: &stores,
                    });
                }
            }
            slots[si] = None;
            let f = frames.pop().expect("frame at current depth");
            res.truncate(f.res_base);
            continue;
        }
        let chosen = {
            let f = frames.last_mut().expect("frame at current depth");
            let rvals = &res[f.res_base..];
            let mut chosen = None;
            while let Some(slot) = f.next() {
                if rvals.is_empty() {
                    chosen = Some(slot);
                    break;
                }
                let t = store.tuple(slot).expect("probed slot is live");
                if rvals.iter().all(|&(v, ca)| t.values[ca] == v) {
                    chosen = Some(slot);
                    break;
                }
            }
            chosen
        };
        match chosen {
            Some(slot) => {
                slots[step.stream.index()] = Some(slot);
                let f = enter(&steps[depth + 1], slots, &mut res);
                frames.push(f);
            }
            None => {
                slots[step.stream.index()] = None;
                let f = frames.pop().expect("frame at current depth");
                res.truncate(f.res_base);
            }
        }
    }
    count
}

/// The original recursive probe kernel, retained verbatim as a differential
/// reference: the iterative kernel must visit the exact same matches in the
/// exact same order (`tests/probe_equivalence.rs`, probe microbenches).
/// Not part of the public API.
#[doc(hidden)]
pub fn probe_each_recursive<F: FnMut(&Bindings<'_>)>(
    plan: &ProbePlan,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    mut on_match: F,
) -> u64 {
    debug_assert_eq!(plan.origin(), origin_tuple.stream);
    let mut slots: Vec<Option<Slot>> = vec![None; stores.len()];
    let mut count = 0u64;
    recurse(
        plan,
        0,
        origin_tuple,
        stores,
        &mut slots,
        &mut count,
        &mut on_match,
    );
    count
}

fn recurse<F: FnMut(&Bindings<'_>)>(
    plan: &ProbePlan,
    step_idx: usize,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    slots: &mut Vec<Option<Slot>>,
    count: &mut u64,
    on_match: &mut F,
) {
    if step_idx == plan.steps().len() {
        *count += 1;
        let bindings = Bindings {
            origin: plan.origin(),
            origin_tuple,
            slots,
            stores: &stores,
        };
        on_match(&bindings);
        return;
    }
    let step = &plan.steps()[step_idx];
    let drive_value = bound_value(
        plan.origin(),
        origin_tuple,
        stores,
        slots,
        step.drive_stream,
        step.drive_attr,
    );
    let store = &stores[step.stream.index()];
    let candidates = store.probe(step.probe_attr, drive_value);
    for slot in candidates.iter() {
        let tuple = store.tuple(slot).expect("probed slot is live");
        let residual_ok = step.residual.iter().all(|&(bs, ba, ca)| {
            bound_value(plan.origin(), origin_tuple, stores, slots, bs, ba) == tuple.values[ca]
        });
        if !residual_ok {
            continue;
        }
        slots[step.stream.index()] = Some(slot);
        recurse(
            plan,
            step_idx + 1,
            origin_tuple,
            stores,
            slots,
            count,
            on_match,
        );
        slots[step.stream.index()] = None;
    }
}

/// Reads an attribute of a bound stream (origin or already-probed window).
fn bound_value(
    origin: StreamId,
    origin_tuple: &Tuple,
    stores: &[WindowStore],
    slots: &[Option<Slot>],
    stream: StreamId,
    attr: usize,
) -> Value {
    if stream == origin {
        origin_tuple.values[attr]
    } else {
        let slot = slots[stream.index()].expect("drive stream bound before use");
        stores[stream.index()]
            .tuple(slot)
            .expect("bound slot is live")
            .values[attr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, JoinQuery, SeqNo, StreamSchema, VTime, WindowSpec};

    fn chain3() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    fn stores_for(q: &JoinQuery) -> Vec<WindowStore> {
        (0..q.n_streams())
            .map(|s| {
                WindowStore::new(
                    q.window(StreamId(s)),
                    q.join_attrs(StreamId(s)),
                    1_000,
                )
            })
            .collect()
    }

    fn tup(stream: usize, seq: u64, a: u64, b: u64) -> Tuple {
        Tuple::new(
            StreamId(stream),
            VTime::ZERO,
            SeqNo(seq),
            vec![Value(a), Value(b)],
        )
    }

    #[test]
    fn chain_probe_counts_combinations() {
        let q = chain3();
        let mut stores = stores_for(&q);
        // W2: two tuples (5, 8); W3: three tuples with A1=8.
        stores[1].insert(tup(1, 0, 5, 8), 0.0);
        stores[1].insert(tup(1, 1, 5, 8), 0.0);
        stores[2].insert(tup(2, 2, 8, 1), 0.0);
        stores[2].insert(tup(2, 3, 8, 2), 0.0);
        stores[2].insert(tup(2, 4, 8, 3), 0.0);
        let plan = ProbePlan::new(&q, StreamId(0));
        // Arriving R1 tuple with A1=5 joins 2 R2-tuples × 3 R3-tuples.
        let t = tup(0, 9, 5, 0);
        assert_eq!(probe_count(&plan, &t, &stores), 6);
        // Non-matching arrival produces nothing.
        let t = tup(0, 10, 6, 0);
        assert_eq!(probe_count(&plan, &t, &stores), 0);
    }

    #[test]
    fn probe_from_middle_stream() {
        let q = chain3();
        let mut stores = stores_for(&q);
        stores[0].insert(tup(0, 0, 7, 0), 0.0);
        stores[0].insert(tup(0, 1, 7, 0), 0.0);
        stores[2].insert(tup(2, 2, 4, 0), 0.0);
        let plan = ProbePlan::new(&q, StreamId(1));
        // R2 tuple (7, 4): matches both R1 tuples and the R3 tuple.
        assert_eq!(probe_count(&plan, &tup(1, 9, 7, 4), &stores), 2);
        // R2 tuple (7, 5): right side empty -> nothing.
        assert_eq!(probe_count(&plan, &tup(1, 10, 7, 5), &stores), 0);
    }

    #[test]
    fn bindings_expose_values_and_slots() {
        let q = chain3();
        let mut stores = stores_for(&q);
        stores[1].insert(tup(1, 0, 5, 8), 0.0);
        stores[2].insert(tup(2, 1, 8, 42), 0.0);
        let plan = ProbePlan::new(&q, StreamId(0));
        let t = tup(0, 9, 5, 77);
        let mut seen = Vec::new();
        let count = probe_each(&plan, &t, &stores, |b| {
            assert_eq!(b.origin(), StreamId(0));
            assert_eq!(b.origin_tuple().seq, SeqNo(9));
            assert_eq!(b.value(StreamId(0), 1), Value(77));
            assert_eq!(b.value(StreamId(1), 1), Value(8));
            assert_eq!(b.value(StreamId(2), 1), Value(42));
            assert!(b.slot(StreamId(0)).is_none());
            assert!(b.slot(StreamId(1)).is_some());
            seen.push(b.slot(StreamId(2)).unwrap());
        });
        assert_eq!(count, 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(stores[2].tuple(seen[0]).unwrap().values[1], Value(42));
    }

    #[test]
    fn triangle_residual_filters_matches() {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        let q = JoinQuery::from_names(
            c,
            &[
                ("R1.A1", "R2.A1"),
                ("R2.A2", "R3.A1"),
                ("R3.A2", "R1.A2"),
            ],
            WindowSpec::secs(500),
        )
        .unwrap();
        let mut stores = stores_for(&q);
        stores[1].insert(tup(1, 0, 1, 2), 0.0);
        // Two R3 candidates match R2.A2 = R3.A1 = 2, but only one closes
        // the cycle R3.A2 = R1.A2 = 9.
        stores[2].insert(tup(2, 1, 2, 9), 0.0);
        stores[2].insert(tup(2, 2, 2, 8), 0.0);
        let plan = ProbePlan::new(&q, StreamId(0));
        let t = tup(0, 9, 1, 9);
        assert_eq!(probe_count(&plan, &t, &stores), 1);
    }

    #[test]
    fn exhaustive_against_nested_loops() {
        // Brute-force cross-check on small random-ish relations.
        let q = chain3();
        let mut stores = stores_for(&q);
        let mut seq = 0;
        let mut w: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3];
        for s in 0..3usize {
            for i in 0..20u64 {
                let (a, b) = ((i * 7 + s as u64) % 5, (i * 3 + s as u64) % 4);
                stores[s].insert(tup(s, seq, a, b), 0.0);
                w[s].push((a, b));
                seq += 1;
            }
        }
        let plans = ProbePlan::all(&q);
        for (s, plan) in plans.iter().enumerate() {
            let t = tup(s, 999, 2, 3);
            let got = probe_count(plan, &t, &stores);
            // Nested-loop reference with W_s replaced by {t}.
            let (ta, tb) = (2u64, 3u64);
            let mut expect = 0u64;
            let r1: Vec<(u64, u64)> = if s == 0 { vec![(ta, tb)] } else { w[0].clone() };
            let r2: Vec<(u64, u64)> = if s == 1 { vec![(ta, tb)] } else { w[1].clone() };
            let r3: Vec<(u64, u64)> = if s == 2 { vec![(ta, tb)] } else { w[2].clone() };
            for &(a1, _) in &r1 {
                for &(b1, b2) in &r2 {
                    if a1 == b1 {
                        for &(c1, _) in &r3 {
                            if b2 == c1 {
                                expect += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(got, expect, "origin {s}");
        }
    }

    #[test]
    fn iterative_matches_recursive_order() {
        // The three dispatch shapes (chain-from-end = probe_2 chain,
        // middle-origin = probe_2 star, triangle = probe_n with residuals)
        // must all enumerate matches in the recursive kernel's order.
        let q = chain3();
        let mut stores = stores_for(&q);
        let mut seq = 0;
        for (s, store) in stores.iter_mut().enumerate() {
            for i in 0..15u64 {
                store.insert(tup(s, seq, (i * 5 + s as u64) % 4, (i * 3) % 4), 0.0);
                seq += 1;
            }
        }
        for plan in ProbePlan::all(&q) {
            let t = tup(plan.origin().index(), 999, 2, 3);
            let mut got = Vec::new();
            let n1 = probe_each(&plan, &t, &stores, |b| {
                got.push((0..3).map(|k| b.seq(StreamId(k))).collect::<Vec<_>>());
            });
            let mut want = Vec::new();
            let n2 = probe_each_recursive(&plan, &t, &stores, |b| {
                want.push((0..3).map(|k| b.seq(StreamId(k))).collect::<Vec<_>>());
            });
            assert_eq!(n1, n2);
            assert_eq!(got, want, "match order diverged (origin {:?})", plan.origin());
        }
    }
}
