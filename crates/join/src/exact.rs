//! The exact (unbounded-memory) reference join.

use crate::plan::ProbePlan;
use crate::probe::{probe_each, Bindings};
use mstream_types::{JoinQuery, Row, SeqNo, StreamId, Tuple, VTime};
use mstream_window::WindowStore;

/// A multi-way window join with no memory limit and no shedding.
///
/// This is the ground-truth executor: every experiment that reports a
/// "ratio of approximate and exact result" (Figure 4), a relative aggregate
/// error, or a quantile difference (Figure 7) runs the same trace through
/// an `ExactJoin` to obtain the true result.
pub struct ExactJoin {
    query: JoinQuery,
    stores: Vec<WindowStore>,
    plans: Vec<ProbePlan>,
    next_seq: SeqNo,
    total_output: u64,
}

impl ExactJoin {
    /// Builds the reference executor for `query`.
    pub fn new(query: JoinQuery) -> Self {
        let stores = (0..query.n_streams())
            .map(|s| {
                let sid = StreamId(s);
                WindowStore::new(query.window(sid), query.join_attrs(sid), usize::MAX / 2)
            })
            .collect();
        let plans = ProbePlan::all(&query);
        ExactJoin {
            query,
            stores,
            plans,
            next_seq: SeqNo(0),
            total_output: 0,
        }
    }

    /// The query being executed.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// Processes one arrival: expires windows, emits the join results the
    /// tuple produces (via `on_match`), stores the tuple. Returns the
    /// number of result tuples produced by this arrival.
    pub fn process_each<F: FnMut(&Bindings<'_>)>(
        &mut self,
        stream: StreamId,
        values: impl Into<Row>,
        now: VTime,
        on_match: F,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        for store in &mut self.stores {
            let _ = store.expire(now);
        }
        let tuple = Tuple::new(stream, now, seq, values);
        let produced = probe_each(&self.plans[stream.index()], &tuple, &self.stores, on_match);
        self.total_output += produced;
        self.stores[stream.index()].insert(tuple, 0.0);
        produced
    }

    /// [`Self::process_each`] without inspecting matches.
    pub fn process(&mut self, stream: StreamId, values: impl Into<Row>, now: VTime) -> u64 {
        self.process_each(stream, values, now, |_| {})
    }

    /// Total result tuples emitted so far.
    pub fn total_output(&self) -> u64 {
        self.total_output
    }

    /// Resident tuples in `stream`'s window, or `None` if `stream` is not
    /// one of this query's streams.
    pub fn window_len(&self, stream: StreamId) -> Option<usize> {
        self.stores.get(stream.index()).map(|s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, StreamSchema, VDur, Value, WindowSpec};

    fn chain3(window_secs: u64) -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(window_secs),
        )
        .unwrap()
    }

    fn v(a: u64, b: u64) -> Vec<Value> {
        vec![Value(a), Value(b)]
    }

    #[test]
    fn produces_all_chain_matches() {
        let mut j = ExactJoin::new(chain3(100));
        let t = VTime::ZERO;
        assert_eq!(j.process(StreamId(1), v(5, 8), t), 0, "nothing to join yet");
        // The 3-way result needs all sides: W1 is still empty.
        assert_eq!(j.process(StreamId(2), v(8, 0), t), 0);
        // R2.(5,8) matches R3.(8,0); each arriving R1.(5,_) completes one.
        assert_eq!(j.process(StreamId(0), v(5, 1), t), 1);
        assert_eq!(j.process(StreamId(0), v(5, 2), t), 1);
        assert_eq!(j.total_output(), 2);
    }

    #[test]
    fn chain_join_needs_all_three_sides() {
        let mut j = ExactJoin::new(chain3(100));
        let t = VTime::ZERO;
        j.process(StreamId(0), v(5, 1), t);
        // R2 tuple matches R1 on A1 but no R3 exists yet: emits nothing.
        assert_eq!(j.process(StreamId(1), v(5, 8), t), 0);
        // R3 arrival completes the chain.
        assert_eq!(j.process(StreamId(2), v(8, 3), t), 1);
    }

    #[test]
    fn expiration_removes_old_partners() {
        let mut j = ExactJoin::new(chain3(10));
        j.process(StreamId(1), v(5, 8), VTime::ZERO);
        j.process(StreamId(2), v(8, 0), VTime::ZERO);
        // At t=10 the earlier tuples have expired: no matches.
        assert_eq!(j.process(StreamId(0), v(5, 1), VTime::from_secs(10)), 0);
        assert_eq!(j.window_len(StreamId(1)), Some(0));
    }

    #[test]
    fn window_lengths_track_arrivals() {
        let mut j = ExactJoin::new(chain3(100));
        for i in 0..5 {
            j.process(StreamId(0), v(i, i), VTime::ZERO);
        }
        assert_eq!(j.window_len(StreamId(0)), Some(5));
        assert_eq!(j.window_len(StreamId(1)), Some(0));
    }

    #[test]
    fn matches_brute_force_on_random_trace() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let window = VDur::from_secs(50);
        let mut j = ExactJoin::new(chain3(50));
        let mut rng = StdRng::seed_from_u64(3);
        // history of (stream, ts, values) for brute-force reference.
        let mut history: Vec<(usize, u64, u64, u64)> = Vec::new();
        let mut total = 0u64;
        for step in 0..600u64 {
            let now = VTime::from_secs(step / 4);
            let s = rng.gen_range(0..3usize);
            let (a, b) = (rng.gen_range(0..6u64), rng.gen_range(0..6u64));
            let got = j.process(StreamId(s), v(a, b), now);
            // Brute force: alive = ts + 50 > now, on the other two streams.
            let alive: Vec<&(usize, u64, u64, u64)> = history
                .iter()
                .filter(|(_, ts, _, _)| VTime::from_secs(*ts) + window > now)
                .collect();
            let mut expect = 0u64;
            match s {
                0 => {
                    for &&(s2, _, a2, b2) in &alive {
                        if s2 == 1 && a2 == a {
                            for &&(s3, _, a3, _) in &alive {
                                if s3 == 2 && a3 == b2 {
                                    expect += 1;
                                }
                            }
                        }
                    }
                }
                1 => {
                    let left = alive.iter().filter(|t| t.0 == 0 && t.2 == a).count() as u64;
                    let right = alive.iter().filter(|t| t.0 == 2 && t.2 == b).count() as u64;
                    expect = left * right;
                }
                _ => {
                    for &&(s2, _, a2, b2) in &alive {
                        if s2 == 1 && b2 == a {
                            for &&(s1, _, a1, _) in &alive {
                                if s1 == 0 && a1 == a2 {
                                    expect += 1;
                                }
                            }
                        }
                    }
                }
            }
            assert_eq!(got, expect, "step {step} stream {s}");
            history.push((s, step / 4, a, b));
            total += got;
        }
        assert_eq!(j.total_output(), total);
        assert!(total > 0, "trace should produce some joins");
    }
}
