//! Probe plans: per-origin evaluation orders over the join graph.

use mstream_types::{JoinQuery, StreamId};

/// One step of a probe plan: bind stream `stream` by probing its hash index
/// on `probe_attr` with the value of an already-bound stream's attribute,
/// then verify any further predicates that connect `stream` to the bound
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanStep {
    /// The stream bound by this step.
    pub stream: StreamId,
    /// Already-bound stream whose value drives the index probe.
    pub drive_stream: StreamId,
    /// Attribute of `drive_stream` supplying the probe value.
    pub drive_attr: usize,
    /// Attribute of `stream` that is hash-probed.
    pub probe_attr: usize,
    /// Residual equi-checks `(bound stream, bound attr, candidate attr)`
    /// for predicates whose second endpoint also lands on `stream`
    /// (cyclic join graphs).
    pub residual: Vec<(StreamId, usize, usize)>,
}

/// The evaluation order used when a tuple of `origin` arrives: a BFS over
/// the (connected) join graph starting at `origin`, so each step always has
/// a bound neighbour to drive its index probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbePlan {
    origin: StreamId,
    steps: Vec<PlanStep>,
}

impl ProbePlan {
    /// Builds the plan for tuples arriving on `origin`.
    ///
    /// # Panics
    /// Panics if `origin` is out of range. (Query connectivity is validated
    /// by [`JoinQuery`] construction, so a drive predicate always exists.)
    pub fn new(query: &JoinQuery, origin: StreamId) -> Self {
        let n = query.n_streams();
        assert!(origin.index() < n, "origin stream out of range");
        let mut bound = vec![false; n];
        bound[origin.index()] = true;
        let mut used_pred = vec![false; query.predicates().len()];
        let mut steps = Vec::with_capacity(n - 1);
        // BFS frontier over streams; deterministic order (lowest id first).
        while steps.len() < n - 1 {
            // Find the lowest-id unbound stream adjacent to a bound one.
            let mut chosen: Option<(usize, usize)> = None; // (stream, pred)
            for (pi, pred) in query.predicates().iter().enumerate() {
                let (l, r) = (pred.left.stream.index(), pred.right.stream.index());
                let candidate = match (bound[l], bound[r]) {
                    (true, false) => Some(r),
                    (false, true) => Some(l),
                    _ => None,
                };
                if let Some(s) = candidate {
                    if chosen.map_or(true, |(cs, _)| s < cs) {
                        chosen = Some((s, pi));
                    }
                }
            }
            let (s, pi) = chosen.expect("join graph is connected");
            let pred = query.predicates()[pi];
            used_pred[pi] = true;
            let stream = StreamId(s);
            let (drive_side, probe_side) = if pred.left.stream == stream {
                (pred.right, pred.left)
            } else {
                (pred.left, pred.right)
            };
            bound[s] = true;
            // Any other predicate with both endpoints now bound and one
            // endpoint on `stream` becomes a residual check of this step.
            let mut residual = Vec::new();
            for (qi, q) in query.predicates().iter().enumerate() {
                if used_pred[qi] {
                    continue;
                }
                let (l, r) = (q.left, q.right);
                if bound[l.stream.index()] && bound[r.stream.index()] {
                    let (on_new, on_old) = if l.stream == stream { (l, r) } else { (r, l) };
                    debug_assert!(on_new.stream == stream || on_old.stream == stream);
                    // Exactly one endpoint is on the newly bound stream:
                    // a predicate inside the previously-bound set would have
                    // been consumed when its second endpoint was bound.
                    residual.push((on_old.stream, on_old.attr, on_new.attr));
                    used_pred[qi] = true;
                }
            }
            steps.push(PlanStep {
                stream,
                drive_stream: drive_side.stream,
                drive_attr: drive_side.attr,
                probe_attr: probe_side.attr,
                residual,
            });
        }
        debug_assert!(used_pred.iter().all(|&u| u), "all predicates consumed");
        ProbePlan { origin, steps }
    }

    /// Plans for every origin stream, indexed by stream id.
    pub fn all(query: &JoinQuery) -> Vec<ProbePlan> {
        (0..query.n_streams())
            .map(|s| ProbePlan::new(query, StreamId(s)))
            .collect()
    }

    /// The arriving stream this plan serves.
    pub fn origin(&self) -> StreamId {
        self.origin
    }

    /// The evaluation steps, in order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::{Catalog, StreamSchema, WindowSpec};

    fn chain3() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    /// A triangle query: 3 streams, 3 predicates (one becomes residual).
    fn triangle() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[
                ("R1.A1", "R2.A1"),
                ("R2.A2", "R3.A1"),
                ("R3.A2", "R1.A2"),
            ],
            WindowSpec::secs(500),
        )
        .unwrap()
    }

    #[test]
    fn chain_plan_from_each_origin() {
        let q = chain3();
        // From R1: bind R2 via pred 0, then R3 via pred 1.
        let p = ProbePlan::new(&q, StreamId(0));
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.steps()[0].stream, StreamId(1));
        assert_eq!(p.steps()[0].drive_stream, StreamId(0));
        assert_eq!(p.steps()[0].probe_attr, 0);
        assert_eq!(p.steps()[1].stream, StreamId(2));
        assert_eq!(p.steps()[1].drive_stream, StreamId(1));
        assert_eq!(p.steps()[1].drive_attr, 1);
        assert!(p.steps().iter().all(|s| s.residual.is_empty()));

        // From the middle stream R2 both neighbours are direct probes.
        let p = ProbePlan::new(&q, StreamId(1));
        let streams: Vec<_> = p.steps().iter().map(|s| s.stream).collect();
        assert_eq!(streams, vec![StreamId(0), StreamId(2)]);
        assert!(p.steps().iter().all(|s| s.drive_stream == StreamId(1)));

        // From R3: bind R2 then R1.
        let p = ProbePlan::new(&q, StreamId(2));
        let streams: Vec<_> = p.steps().iter().map(|s| s.stream).collect();
        assert_eq!(streams, vec![StreamId(1), StreamId(0)]);
    }

    #[test]
    fn triangle_plan_has_residual_check() {
        let q = triangle();
        let p = ProbePlan::new(&q, StreamId(0));
        assert_eq!(p.steps().len(), 2);
        let residuals: usize = p.steps().iter().map(|s| s.residual.len()).sum();
        assert_eq!(residuals, 1, "the cycle-closing predicate is residual");
        // The residual lands on the last-bound stream's step.
        assert!(!p.steps()[1].residual.is_empty());
    }

    #[test]
    fn all_builds_one_plan_per_stream() {
        let q = chain3();
        let plans = ProbePlan::all(&q);
        assert_eq!(plans.len(), 3);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.origin(), StreamId(i));
            assert_eq!(p.steps().len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_origin_panics() {
        let q = chain3();
        let _ = ProbePlan::new(&q, StreamId(9));
    }
}
