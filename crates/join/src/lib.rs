//! Multi-way sliding-window join execution.
//!
//! The paper's operator (§2, Figure 1) processes one tuple at a time: when
//! tuple `t` of stream `S_i` reaches the join operator, expired tuples are
//! deleted from every window, the join result produced by `t` against all
//! *other* windows is emitted, and `t` is stored in `W_i`. This crate
//! implements the probing machinery that all engines (shedding or exact)
//! share:
//!
//! * [`ProbePlan`] — a per-origin-stream evaluation order over the join
//!   graph: BFS from the origin so every step probes a hash index on one
//!   driving predicate and verifies any remaining predicates by value.
//! * [`probe_each`] / [`probe_count`] — enumeration of all combinations of
//!   window tuples that join with the arriving tuple, with a zero-copy
//!   [`Bindings`] view for consumers (output counting, per-tuple produced
//!   counters, windowed aggregates).
//! * [`ExactJoin`] — the unbounded-memory reference executor: ground truth
//!   for "ratio of approximate and exact result" (Figure 4) and for the
//!   aggregate/quantile error metrics (Figure 7).

//!
//! ```
//! use mstream_join::ExactJoin;
//! use mstream_types::{Catalog, JoinQuery, StreamId, StreamSchema, VTime, Value, WindowSpec};
//!
//! let mut c = Catalog::new();
//! c.add_stream(StreamSchema::new("L", &["k"]));
//! c.add_stream(StreamSchema::new("R", &["k"]));
//! let query = JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::secs(60)).unwrap();
//!
//! let mut join = ExactJoin::new(query);
//! assert_eq!(join.process(StreamId(0), vec![Value(5)], VTime::ZERO), 0);
//! assert_eq!(join.process(StreamId(1), vec![Value(5)], VTime::from_secs(1)), 1);
//! assert_eq!(join.total_output(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod plan;
pub mod probe;

pub use exact::ExactJoin;
pub use plan::{PlanStep, ProbePlan};
#[doc(hidden)]
pub use probe::probe_each_recursive;
pub use probe::{probe_count, probe_each, Bindings, StoreLookup};
