//! Differential test of the iterative probe kernel against the original
//! recursive one: on random chain, star and cyclic queries with random
//! window contents, `probe_each` must visit the **exact same matches in the
//! exact same order** as `probe_each_recursive` from every origin stream.
//! Covers all dispatch shapes: single-step, two-step star, two-step chain,
//! and the general frame-stack kernel (3+ steps, residual predicates).

use mstream_join::{probe_each, probe_each_recursive, ProbePlan};
use mstream_types::{
    Catalog, JoinQuery, SeqNo, StreamId, StreamSchema, Tuple, VTime, Value, WindowSpec,
};
use mstream_window::WindowStore;
use proptest::prelude::*;

/// The query shapes under test, by name.
fn query(shape: usize) -> JoinQuery {
    let names = ["R1", "R2", "R3", "R4"];
    let mk = |n: usize| {
        let mut c = Catalog::new();
        for &name in &names[..n] {
            c.add_stream(StreamSchema::new(name, &["A1", "A2"]));
        }
        c
    };
    let w = WindowSpec::secs(500);
    match shape {
        // chain2: one predicate, single-step plans.
        0 => JoinQuery::from_names(mk(2), &[("R1.A1", "R2.A1")], w).unwrap(),
        // chain3: two-step chain from the ends, star from the middle.
        1 => JoinQuery::from_names(mk(3), &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")], w).unwrap(),
        // star3: R1 in the middle — two-step star from R1.
        2 => JoinQuery::from_names(mk(3), &[("R1.A1", "R2.A1"), ("R1.A2", "R3.A1")], w).unwrap(),
        // triangle: cyclic, one residual predicate.
        3 => JoinQuery::from_names(
            mk(3),
            &[
                ("R1.A1", "R2.A1"),
                ("R2.A2", "R3.A1"),
                ("R3.A2", "R1.A2"),
            ],
            w,
        )
        .unwrap(),
        // chain4: three-step plans through the general kernel.
        4 => JoinQuery::from_names(
            mk(4),
            &[
                ("R1.A1", "R2.A1"),
                ("R2.A2", "R3.A1"),
                ("R3.A2", "R4.A1"),
            ],
            w,
        )
        .unwrap(),
        // cycle4: 4-cycle — three plan steps plus a residual closing edge.
        _ => JoinQuery::from_names(
            mk(4),
            &[
                ("R1.A1", "R2.A1"),
                ("R2.A2", "R3.A1"),
                ("R3.A2", "R4.A1"),
                ("R4.A2", "R1.A2"),
            ],
            w,
        )
        .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iterative_kernel_matches_recursive(
        shape in 0usize..6,
        // Small value domain so joins actually fan out.
        data in proptest::collection::vec((0u64..4, 0u64..4), 10..80),
        probe_vals in (0u64..4, 0u64..4),
    ) {
        let q = query(shape);
        let n = q.n_streams();
        let mut stores: Vec<WindowStore> = (0..n)
            .map(|s| WindowStore::new(q.window(StreamId(s)), q.join_attrs(StreamId(s)), 10_000))
            .collect();
        for (i, &(a, b)) in data.iter().enumerate() {
            let s = i % n;
            let t = Tuple::new(
                StreamId(s),
                VTime::ZERO,
                SeqNo(i as u64),
                vec![Value(a), Value(b)],
            );
            stores[s].insert(t, 0.0);
        }
        for origin in 0..n {
            let plan = ProbePlan::new(&q, StreamId(origin));
            let t = Tuple::new(
                StreamId(origin),
                VTime::ZERO,
                SeqNo(9999),
                vec![Value(probe_vals.0), Value(probe_vals.1)],
            );
            let mut got = Vec::new();
            let n1 = probe_each(&plan, &t, &stores, |b| {
                got.push((0..n).map(|k| b.seq(StreamId(k))).collect::<Vec<_>>());
            });
            let mut want = Vec::new();
            let n2 = probe_each_recursive(&plan, &t, &stores, |b| {
                want.push((0..n).map(|k| b.seq(StreamId(k))).collect::<Vec<_>>());
            });
            prop_assert_eq!(n1, n2, "match count (shape {}, origin {})", shape, origin);
            prop_assert_eq!(&got, &want, "match order (shape {}, origin {})", shape, origin);
            prop_assert_eq!(n1 as usize, got.len());
        }
    }
}
