//! The multi-query differential runner: every registered query's output
//! checked against its *own* solo exact oracle, in-process and sharded.
//!
//! Contracts (per query, per policy):
//!
//! 1. **At 100% memory** the shared data plane's per-query output multiset
//!    must equal the query's solo [`ExactJoin`] output on the projection
//!    of per-stream `(timestamp, values…)` rows. Sequence numbers cannot
//!    take part — the shared engine mints one global sequence per arrival
//!    while a solo oracle numbers only its own streams' arrivals — so the
//!    differential compares the timestamp/value projection as a multiset
//!    (duplicates keep their multiplicities).
//! 2. **Under reduced memory** each query's shed output must be a
//!    sub-multiset of its oracle's.
//! 3. The engine's structural invariants hold after every arrival, and the
//!    sharded coordinator honours its contract: keyed query sets run at
//!    the requested width, nothing is dropped under blocking backpressure.

use crate::gen::{Arrival as GenArrival, MultiCase};
use crate::run::{first_diff, normalized_metrics, not_in_multiset, panic_message, Failure, FailureKind};
use mstream_core::ingest::QueryFnSink;
use mstream_core::shard::ShardConfig;
use mstream_core::{Arrival, EngineBuilder, EngineMetrics};
use mstream_join::{Bindings, ExactJoin};
use mstream_shed_policies::{parse_policy, ALL_POLICY_NAMES};
use mstream_sketch::BankConfig;
use mstream_types::{JoinQuery, StreamId, VTime, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs the full multi-query differential for `case`.
pub fn run_multi_case(case: &MultiCase) -> Result<(), Failure> {
    let oracle: Vec<Vec<Vec<u64>>> = case
        .queries
        .iter()
        .map(|q| oracle_rows(q, &case.arrivals))
        .collect();

    for &name in ALL_POLICY_NAMES {
        let full = drive_multi(case, name, true)?;
        check_exact(name, &full, &oracle)?;
        let shed = drive_multi(case, name, false)?;
        check_sub(name, &shed, &oracle)?;
    }

    for name in ["MSketch", "FIFO"] {
        for shards in [1usize, 2] {
            let label = format!("{name}@multi-x{shards}");
            let full = drive_multi_sharded(case, name, shards, true)?;
            check_exact(&label, &full, &oracle)?;
            let shed = drive_multi_sharded(case, name, shards, false)?;
            check_sub(&label, &shed, &oracle)?;
        }
    }
    Ok(())
}

/// Per-query exact-match check at 100% memory.
fn check_exact(
    label: &str,
    got: &[Vec<Vec<u64>>],
    oracle: &[Vec<Vec<u64>>],
) -> Result<(), Failure> {
    for (q, (g, w)) in got.iter().zip(oracle).enumerate() {
        if g != w {
            return Err(Failure {
                policy: format!("{label}[q{q}]"),
                kind: FailureKind::ExactMismatch,
                detail: first_diff(g, w),
            });
        }
    }
    Ok(())
}

/// Per-query sub-multiset check under reduced memory.
fn check_sub(
    label: &str,
    got: &[Vec<Vec<u64>>],
    oracle: &[Vec<Vec<u64>>],
) -> Result<(), Failure> {
    for (q, (g, w)) in got.iter().zip(oracle).enumerate() {
        if let Some(extra) = not_in_multiset(g, w) {
            return Err(Failure {
                policy: format!("{label}[q{q}]"),
                kind: FailureKind::NotSubMultiset,
                detail: format!("shed run emitted a row the solo oracle never did: {extra:?}"),
            });
        }
    }
    Ok(())
}

/// One canonical result row: per-stream `(timestamp µs, values…)` in the
/// query's local stream order.
fn projected(b: &Bindings<'_>, n: usize) -> Vec<u64> {
    let mut r = Vec::with_capacity(n * 3);
    for k in 0..n {
        let t = b.tuple(StreamId(k));
        r.push(t.ts.as_micros());
        r.extend(t.values.iter().map(|v| v.0));
    }
    r
}

/// The query's local id for pool stream `pool`, if it uses that stream.
fn local_stream(query: &JoinQuery, pool: usize) -> Option<StreamId> {
    let name = format!("R{}", pool + 1);
    query
        .catalog()
        .iter()
        .find(|(_, s)| s.name == name)
        .map(|(id, _)| id)
}

/// The query's solo exact output, fed only the arrivals on its streams.
fn oracle_rows(query: &JoinQuery, arrivals: &[GenArrival]) -> Vec<Vec<u64>> {
    let n = query.n_streams();
    let mut join = ExactJoin::new(query.clone());
    let mut rows = Vec::new();
    for a in arrivals {
        let Some(local) = local_stream(query, a.stream) else {
            continue;
        };
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        join.process_each(local, values, VTime::from_micros(a.at_micros), |b| {
            rows.push(projected(b, n));
        });
    }
    rows.sort();
    rows
}

/// The shared [`EngineBuilder`] setup for one multi-query run: explicit
/// epoch and sketch bank, case-seeded determinism, every query registered
/// in case order.
fn builder(case: &MultiCase, policy: &str, capacity: usize) -> EngineBuilder {
    let mut b = EngineBuilder::new_multi()
        .boxed_policy(parse_policy(policy).expect("every registered policy parses"))
        .capacity_per_window(capacity)
        .epoch(case.epoch)
        .bank(BankConfig {
            s1: 32,
            s2: 1,
            seed: case.seed,
        })
        .seed(case.seed);
    for query in &case.queries {
        b.register(query.clone())
            .expect("generated pool schemas always agree");
    }
    b
}

/// Resolves each pool index appearing in the trace to the engine catalog's
/// global stream id (by name).
fn pool_map(
    arrivals: &[GenArrival],
    resolve: impl Fn(&str) -> Option<StreamId>,
) -> HashMap<usize, StreamId> {
    let mut map = HashMap::new();
    for a in arrivals {
        map.entry(a.stream).or_insert_with(|| {
            resolve(&format!("R{}", a.stream + 1))
                .expect("arrivals only target registered streams")
        });
    }
    map
}

/// Drives the trace through the in-process shared data plane. On a
/// `cache_ab` case the trace runs twice — score cache forced on and off —
/// and every query's output plus the cache/ns-normalized engine metrics
/// must be bit-identical (the shared plane's per-class sketch banks and
/// `remove_query` retirement baseline must not leak into scoring).
fn drive_multi(
    case: &MultiCase,
    policy: &str,
    full_memory: bool,
) -> Result<Vec<Vec<Vec<u64>>>, Failure> {
    if !case.cache_ab {
        return Ok(drive_multi_with(case, policy, full_memory, None)?.0);
    }
    let (rows_on, metrics_on) = drive_multi_with(case, policy, full_memory, Some(true))?;
    let (rows_off, metrics_off) = drive_multi_with(case, policy, full_memory, Some(false))?;
    let fail = |detail: String| Failure {
        policy: policy.into(),
        kind: FailureKind::ScoreCacheDivergence,
        detail,
    };
    if rows_on != rows_off {
        let q = rows_on
            .iter()
            .zip(&rows_off)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(fail(format!(
            "multi-query emissions diverge (memory {}, q{q}): {}",
            if full_memory { "full" } else { "reduced" },
            first_diff(&rows_on[q], &rows_off[q])
        )));
    }
    if normalized_metrics(&metrics_on) != normalized_metrics(&metrics_off) {
        return Err(fail(format!(
            "multi-query normalized metrics diverge (memory {}): on {:?} vs off {:?}",
            if full_memory { "full" } else { "reduced" },
            normalized_metrics(&metrics_on),
            normalized_metrics(&metrics_off)
        )));
    }
    Ok(rows_on)
}

/// Per-query canonical rows, as produced by one multi-engine drive.
type PerQueryRows = Vec<Vec<Vec<u64>>>;

/// The single-run body behind [`drive_multi`]: collects per-query
/// canonical rows, re-checks structural invariants after every arrival,
/// and returns the final engine metrics. `cache` pins the productivity
/// score cache for this instance.
fn drive_multi_with(
    case: &MultiCase,
    policy: &str,
    full_memory: bool,
    cache: Option<bool>,
) -> Result<(PerQueryRows, EngineMetrics), Failure> {
    let fail = |detail: String, kind| Failure {
        policy: policy.into(),
        kind,
        detail,
    };
    let capacity = if full_memory {
        case.arrivals.len() + 1
    } else {
        case.capacity
    };
    let mut b = builder(case, policy, capacity);
    if let Some(on) = cache {
        b = b.score_cache(on);
    }
    let mut engine = b
        .build_multi()
        .map_err(|e| fail(format!("engine construction failed: {e:?}"), FailureKind::InvariantPanic))?;
    let globals = pool_map(&case.arrivals, |name| engine.stream_id(name));

    let mut rows: Vec<Vec<Vec<u64>>> = vec![Vec::new(); case.queries.len()];
    for (i, a) in case.arrivals.iter().enumerate() {
        let g = globals[&a.stream];
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        let now = VTime::from_micros(a.at_micros);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            engine.ingest(
                Arrival::new(g, values, now),
                &mut QueryFnSink(|qid, b: &Bindings<'_>| {
                    rows[qid.index()].push(projected(b, b.n_streams()));
                }),
            );
            engine.check_invariants();
        }));
        if let Err(payload) = outcome {
            return Err(fail(
                format!("arrival #{i}: {}", panic_message(&payload)),
                FailureKind::InvariantPanic,
            ));
        }
    }
    for r in &mut rows {
        r.sort();
    }
    let metrics = engine.metrics().clone();
    Ok((rows, metrics))
}

/// Drives the trace through the sharded coordinator at `shards` workers,
/// checks the keyed-width and no-drop contracts, and returns per-query
/// canonical rows from the merged report.
fn drive_multi_sharded(
    case: &MultiCase,
    policy: &str,
    shards: usize,
    full_memory: bool,
) -> Result<Vec<Vec<Vec<u64>>>, Failure> {
    let label = format!("{policy}@multi-x{shards}");
    let fail = |detail: String, kind| Failure {
        policy: label.clone(),
        kind,
        detail,
    };
    let capacity = if full_memory {
        // The shard layer splits the budget S ways and skewed routing may
        // land the whole trace on one worker.
        (case.arrivals.len() + 1) * shards
    } else {
        case.capacity
    };
    let mut engine = builder(case, policy, capacity)
        .shard_config(ShardConfig {
            shards,
            channel_capacity: 4,
            collect_rows: true,
            ..ShardConfig::default()
        })
        .build_multi_sharded()
        .map_err(|e| fail(format!("sharded construction failed: {e:?}"), FailureKind::InvariantPanic))?;
    if case.keyed && (engine.shards() != shards || engine.degraded().is_some()) {
        return Err(fail(
            format!(
                "keyed query set ran on {} shards (requested {shards}), degraded: {:?}",
                engine.shards(),
                engine.degraded()
            ),
            FailureKind::ShardContract,
        ));
    }
    let globals = pool_map(&case.arrivals, |name| engine.stream_id(name));
    for a in &case.arrivals {
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        engine.ingest(Arrival::new(
            globals[&a.stream],
            values,
            VTime::from_micros(a.at_micros),
        ));
    }
    let report = engine
        .finish()
        .map_err(|e| fail(format!("{e}"), FailureKind::InvariantPanic))?;
    if report.shed_channel != 0 {
        return Err(fail(
            format!(
                "{} tuples dropped under Backpressure::Block",
                report.shed_channel
            ),
            FailureKind::ShardContract,
        ));
    }
    let mut rows: Vec<Vec<Vec<u64>>> = report
        .rows
        .expect("collect_rows was set")
        .iter()
        .map(|per_query| {
            per_query
                .iter()
                .map(|result| {
                    let mut r = Vec::with_capacity(result.len() * 3);
                    for t in result {
                        r.push(t.ts.as_micros());
                        r.extend(t.values.iter().map(|v| v.0));
                    }
                    r
                })
                .collect()
        })
        .collect();
    rows.resize_with(case.queries.len(), Vec::new);
    for r in &mut rows {
        r.sort();
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{case_seed, generate_multi_case, install_quiet_hook};

    #[test]
    fn small_multi_sweep_passes() {
        install_quiet_hook();
        for i in 0..3u64 {
            let case = generate_multi_case(case_seed(13, i));
            if let Err(f) = run_multi_case(&case) {
                panic!("multi case {i} (seed {}) failed: {f}", case.seed);
            }
        }
    }

    #[test]
    fn oracle_projection_is_stable_per_query() {
        let case = generate_multi_case(42);
        for q in &case.queries {
            let a = oracle_rows(q, &case.arrivals);
            let b = oracle_rows(q, &case.arrivals);
            assert_eq!(a, b);
        }
    }
}
