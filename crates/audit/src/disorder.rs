//! Event-time disorder audit: bounded-shuffle injection and the recovery
//! contracts of the reorder-buffer front end (DESIGN.md §13).
//!
//! Three contracts, checked per case across every registered policy:
//!
//! 1. **`K = 0` in-order identity** — an engine with a zero disorder bound
//!    fed the in-order trace must be *bit-identical* to the trusting
//!    (no-front-end) engine: same result rows in the same emit order.
//! 2. **Covered-disorder recovery** — shuffling the trace with lateness
//!    bounded by `K` and feeding it to an engine with disorder bound `K`
//!    must reproduce the in-order run exactly (again bit-identical, for
//!    every policy including `Random`: the front end replays the in-order
//!    arrival sequence, so every RNG draw happens in the same order).
//! 3. **Beyond-bound lateness** — an arrival later than `K` is dropped and
//!    counted in `late_dropped`, never joined, and never a panic: the run's
//!    output stays identical to one that never saw the late arrival.
//!
//! The sharded engine (coordinator-side front end) is held to contract 2
//! against its own in-order run at `S = 1` and the case's shard count, so a
//! sweep covers `S ∈ {1, 2, 4}`.

use crate::gen::{Arrival, Case, ReducedMemory};
use crate::run::{first_diff, normalized_metrics, panic_message, row, Failure, FailureKind};
use mstream_core::ingest::FnSink;
use mstream_core::shard::{Backpressure, HotKeyConfig, ShardConfig};
use mstream_core::{EngineBuilder, EngineMetrics};
use mstream_join::Bindings;
use mstream_shed_policies::{parse_policy, ALL_POLICY_NAMES};
use mstream_sketch::BankConfig;
use mstream_types::{StreamId, VDur, VTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Reorders `arrivals` with per-arrival lateness bounded by `bound`,
/// keeping every maximal run of equal timestamps atomic (in original
/// order).
///
/// Each equal-timestamp group gets a random jitter in `[0, bound]` added to
/// its sort key, and groups are stably reordered by `(key, original
/// index)`. If group `h` is delivered before group `g`, then `ts(h) ≤
/// key(h) ≤ key(g) ≤ ts(g) + bound` — so when `g` arrives, every stream's
/// high-water mark is at most `ts(g) + bound`, the watermark is at most
/// `ts(g)`, and `g` is always accepted: the shuffle never exceeds the
/// disorder bound it was built for. Group atomicity matters because the
/// front end breaks equal-timestamp ties by admission order; delivering a
/// group intact replays the in-order tie order exactly.
pub fn inject_disorder(arrivals: &[Arrival], bound: VDur, seed: u64) -> Vec<Arrival> {
    if bound.is_zero() {
        return arrivals.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups: Vec<(u64, usize, &[Arrival])> = Vec::new();
    let mut i = 0;
    while i < arrivals.len() {
        let ts = arrivals[i].at_micros;
        let mut j = i;
        while j < arrivals.len() && arrivals[j].at_micros == ts {
            j += 1;
        }
        let jitter = rng.gen_range(0..=bound.as_micros());
        groups.push((ts + jitter, groups.len(), &arrivals[i..j]));
        i = j;
    }
    groups.sort_by_key(|&(key, idx, _)| (key, idx));
    groups
        .into_iter()
        .flat_map(|(_, _, g)| g.iter().cloned())
        .collect()
}

/// The per-case disorder bound: seeded off the case so sweeps cover a
/// spread from sub-second to multi-second (relative to the generator's
/// up-to-2s clock steps, that spans "barely disordered" to "heavily
/// interleaved").
pub fn disorder_bound_for(case: &Case) -> VDur {
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xD15_0B0D);
    VDur::from_micros(rng.gen_range(100_000..6_000_000u64))
}

/// Runs the event-time disorder audit for `case`.
pub fn run_disorder_case(case: &Case) -> Result<(), Failure> {
    let bound = disorder_bound_for(case);
    let shuffled = inject_disorder(&case.arrivals, bound, case.seed ^ 0x5EED_5EED);

    for &name in ALL_POLICY_NAMES {
        for full_memory in [true, false] {
            let mem = if full_memory { "full" } else { "reduced" };
            let baseline = drive(case, &case.arrivals, name, None, full_memory)?;
            let k0 = drive(
                case,
                &case.arrivals,
                name,
                Some(VDur::from_micros(0)),
                full_memory,
            )?;
            if k0.rows != baseline.rows {
                return Err(Failure {
                    policy: name.into(),
                    kind: FailureKind::DisorderContract,
                    detail: format!(
                        "K=0 in-order run diverged from the trusting engine ({mem} memory): {}",
                        first_diff(&k0.rows, &baseline.rows)
                    ),
                });
            }
            let recovered = drive(case, &shuffled, name, Some(bound), full_memory)?;
            if recovered.rows != baseline.rows {
                return Err(Failure {
                    policy: name.into(),
                    kind: FailureKind::DisorderContract,
                    detail: format!(
                        "covered disorder (K = {:.3}s) failed to reproduce the in-order run \
                         ({mem} memory): {}",
                        bound.as_secs_f64(),
                        first_diff(&recovered.rows, &baseline.rows)
                    ),
                });
            }
            if recovered.late_dropped != 0 {
                return Err(Failure {
                    policy: name.into(),
                    kind: FailureKind::DisorderContract,
                    detail: format!(
                        "covered disorder late-dropped {} arrivals (lateness was bounded by K)",
                        recovered.late_dropped
                    ),
                });
            }
        }
    }

    late_drop_probe(case, &shuffled, bound)?;

    // The sharded coordinator's front end: covered disorder must reproduce
    // the sharded engine's own in-order output at S = 1 and the case's
    // shard count (sweeps thus cover S ∈ {1, 2, 4}).
    for name in ["MSketch", "FIFO"] {
        for shards in [1, case.shards] {
            let baseline = drive_sharded(case, &case.arrivals, name, None, shards)?;
            let recovered = drive_sharded(case, &shuffled, name, Some(bound), shards)?;
            if recovered != baseline {
                return Err(Failure {
                    policy: format!("{name}@x{shards}"),
                    kind: FailureKind::DisorderContract,
                    detail: format!(
                        "sharded covered disorder (K = {:.3}s) diverged from the in-order run: {}",
                        bound.as_secs_f64(),
                        first_diff(&recovered, &baseline)
                    ),
                });
            }
        }
    }

    Ok(())
}

/// One single-engine drive's observables: result rows in emit order (the
/// bit-identity comparisons need order, not just the multiset), the final
/// late-drop counter, and the full engine metrics (the score-cache A/B
/// compares their cache/ns-normalized form).
struct Drive {
    rows: Vec<Vec<u64>>,
    late_dropped: u64,
    metrics: EngineMetrics,
}

/// Drives `arrivals` through a single engine. On a `cache_ab` case with
/// the event-time front end engaged, the trace runs twice — score cache
/// forced on and off — and must be bit-identical; this is the only audit
/// path that exercises the cache's previous-epoch (`generation - 1`)
/// keying, because late-released arrivals score against frozen prior
/// sketches via `productivity_at`.
fn drive(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    disorder: Option<VDur>,
    full_memory: bool,
) -> Result<Drive, Failure> {
    if !(case.cache_ab && disorder.is_some()) {
        return drive_with(case, arrivals, policy, disorder, full_memory, None);
    }
    let on = drive_with(case, arrivals, policy, disorder, full_memory, Some(true))?;
    let off = drive_with(case, arrivals, policy, disorder, full_memory, Some(false))?;
    let fail = |detail: String| Failure {
        policy: policy.into(),
        kind: FailureKind::ScoreCacheDivergence,
        detail,
    };
    if on.rows != off.rows {
        return Err(fail(format!(
            "event-time emissions diverge: {}",
            first_diff(&on.rows, &off.rows)
        )));
    }
    if on.late_dropped != off.late_dropped
        || normalized_metrics(&on.metrics) != normalized_metrics(&off.metrics)
    {
        return Err(fail(format!(
            "event-time normalized metrics diverge: on {:?} vs off {:?}",
            normalized_metrics(&on.metrics),
            normalized_metrics(&off.metrics)
        )));
    }
    Ok(on)
}

/// The single-run body behind [`drive`]: the public ingest path (front
/// end included when `disorder` is set) plus the end-of-trace flush,
/// re-checking structural invariants after every arrival. `cache` pins
/// the productivity score cache for this instance.
fn drive_with(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    disorder: Option<VDur>,
    full_memory: bool,
    cache: Option<bool>,
) -> Result<Drive, Failure> {
    let n = case.n_streams();
    let fail = |detail: String| Failure {
        policy: policy.into(),
        kind: FailureKind::InvariantPanic,
        detail,
    };
    let mut builder = configured(case, arrivals, policy, full_memory);
    if let Some(bound) = disorder {
        builder = builder.disorder_bound(bound);
    }
    if let Some(on) = cache {
        builder = builder.score_cache(on);
    }
    let mut engine = builder
        .build()
        .map_err(|e| fail(format!("engine construction failed: {e:?}")))?;
    let mut rows = Vec::new();
    for (i, a) in arrivals.iter().enumerate() {
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        let now = VTime::from_micros(a.at_micros);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            engine.ingest(
                mstream_core::Arrival::new(StreamId(a.stream), values, now),
                &mut FnSink(|b: &Bindings<'_>| rows.push(row(b, n))),
            );
            engine.check_invariants();
        }));
        if let Err(payload) = outcome {
            return Err(fail(format!("arrival #{i}: {}", panic_message(&payload))));
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        engine.flush(&mut FnSink(|b: &Bindings<'_>| rows.push(row(b, n))));
        engine.check_invariants();
    }));
    if let Err(payload) = outcome {
        return Err(fail(format!("flush: {}", panic_message(&payload))));
    }
    let metrics = engine.metrics().clone();
    Ok(Drive {
        rows,
        late_dropped: metrics.late_dropped,
        metrics,
    })
}

/// Contract 3: an arrival later than the bound is dropped, counted, and
/// has zero effect on the output. Appends a timestamp-zero arrival to the
/// shuffled trace — provably beyond the bound whenever every stream's
/// high-water mark has cleared it — and asserts the run still reproduces
/// the unpolluted baseline with exactly one late drop. Cases whose traces
/// cannot force a drop (a stream's high-water mark never clears the bound)
/// skip the probe.
fn late_drop_probe(case: &Case, shuffled: &[Arrival], bound: VDur) -> Result<(), Failure> {
    let n = case.n_streams();
    let mut hwm = vec![0u64; n];
    for a in shuffled {
        hwm[a.stream] = hwm[a.stream].max(a.at_micros);
    }
    let min_hwm = hwm.iter().copied().min().unwrap_or(0);
    if min_hwm <= bound.as_micros() {
        return Ok(());
    }
    let mut polluted = shuffled.to_vec();
    polluted.push(Arrival {
        stream: 0,
        values: vec![0, 0],
        at_micros: 0,
    });
    for name in ["MSketch", "FIFO"] {
        let baseline = drive(case, shuffled, name, Some(bound), true)?;
        let run = drive(case, &polluted, name, Some(bound), true)?;
        if run.late_dropped != 1 {
            return Err(Failure {
                policy: name.into(),
                kind: FailureKind::DisorderContract,
                detail: format!(
                    "beyond-bound arrival counted {} late drops (expected exactly 1)",
                    run.late_dropped
                ),
            });
        }
        if run.rows != baseline.rows {
            return Err(Failure {
                policy: name.into(),
                kind: FailureKind::DisorderContract,
                detail: format!(
                    "a dropped late arrival still changed the output: {}",
                    first_diff(&run.rows, &baseline.rows)
                ),
            });
        }
    }
    Ok(())
}

/// Drives `arrivals` through the sharded engine (coordinator front end
/// when `disorder` is set) at full memory, returning the canonical merged
/// rows.
fn drive_sharded(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    disorder: Option<VDur>,
    shards: usize,
) -> Result<Vec<Vec<u64>>, Failure> {
    let fail = |detail: String| Failure {
        policy: format!("{policy}@x{shards}"),
        kind: FailureKind::InvariantPanic,
        detail,
    };
    let mut builder = configured(case, arrivals, policy, true)
        // As in the exactness differential: skewed routing may land the
        // whole trace on one worker, so full memory must survive that.
        .capacity_per_window((arrivals.len() + 1) * shards);
    if let Some(bound) = disorder {
        builder = builder.disorder_bound(bound);
    }
    let engine = builder
        .shard_config(ShardConfig {
            shards,
            channel_capacity: 4,
            batch_size: 3,
            backpressure: Backpressure::Block,
            collect_rows: true,
            route_only: false,
            hot_keys: HotKeyConfig {
                enabled: true,
                capacity: 8,
                tracker_capacity: 64,
                epoch_arrivals: 24,
                promote_permille: 200,
                demote_permille: 100,
            },
            broadcast: true,
            batch_ingest: true,
        })
        .build_sharded()
        .map_err(|e| fail(format!("sharded construction failed: {e:?}")))?;
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut engine = engine;
        for a in arrivals {
            let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
            engine.ingest(mstream_core::Arrival::new(
                StreamId(a.stream),
                values,
                VTime::from_micros(a.at_micros),
            ));
        }
        engine.finish()
    }));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(fail(format!("{e}"))),
        Err(payload) => return Err(fail(panic_message(&payload))),
    };
    let n = case.n_streams();
    let rows: Vec<Vec<u64>> = report
        .rows
        .expect("collect_rows was set")
        .iter()
        .map(|result| {
            let mut r = Vec::with_capacity(n * 3);
            for t in result {
                r.push(t.seq.0);
                r.extend(t.values.iter().map(|v| v.0));
            }
            r
        })
        .collect();
    Ok(rows)
}

/// The shared builder setup, mirroring the exactness differential's
/// configuration (explicit epoch, small sketch bank, case-seeded
/// determinism).
fn configured(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
) -> EngineBuilder {
    let builder = EngineBuilder::new(case.query.clone())
        .boxed_policy(parse_policy(policy).expect("every registered policy parses"))
        .epoch(case.epoch)
        .bank(BankConfig {
            s1: 32,
            s2: 1,
            seed: case.seed,
        })
        .seed(case.seed);
    if full_memory {
        builder.capacity_per_window(arrivals.len() + 1)
    } else {
        match &case.reduced {
            ReducedMemory::PerWindow(c) => builder.capacity_per_window(*c),
            ReducedMemory::PerWindowEach(cs) => builder.capacities(cs.clone()),
            ReducedMemory::GlobalPool(total) => builder.global_pool(*total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{case_seed, generate_case, install_quiet_hook};

    /// The injected shuffle respects its own bound: replaying the shuffled
    /// trace against a simulated watermark never finds an arrival below it.
    #[test]
    fn injected_disorder_stays_within_the_bound() {
        for i in 0..10u64 {
            let case = generate_case(case_seed(21, i));
            let bound = disorder_bound_for(&case);
            let shuffled = inject_disorder(&case.arrivals, bound, case.seed);
            assert_eq!(shuffled.len(), case.arrivals.len());
            let mut hwm = vec![0u64; case.n_streams()];
            for a in &shuffled {
                hwm[a.stream] = hwm[a.stream].max(a.at_micros);
                let wm = hwm
                    .iter()
                    .copied()
                    .min()
                    .unwrap()
                    .saturating_sub(bound.as_micros());
                assert!(
                    a.at_micros >= wm,
                    "case {i}: arrival at {}µs below watermark {wm}µs",
                    a.at_micros
                );
            }
        }
    }

    /// Equal-timestamp groups travel atomically and in original order.
    #[test]
    fn injected_disorder_keeps_equal_timestamp_groups_atomic() {
        for i in 0..10u64 {
            let case = generate_case(case_seed(22, i));
            let bound = disorder_bound_for(&case);
            let shuffled = inject_disorder(&case.arrivals, bound, case.seed);
            // Within the shuffled trace, arrivals sharing a timestamp must
            // appear consecutively and in their original relative order.
            let originals: Vec<usize> = shuffled
                .iter()
                .map(|a| {
                    case.arrivals
                        .iter()
                        .position(|o| {
                            o.at_micros == a.at_micros
                                && o.stream == a.stream
                                && o.values == a.values
                        })
                        .expect("shuffled arrival exists in the original")
                })
                .collect();
            let mut k = 0;
            while k < shuffled.len() {
                let ts = shuffled[k].at_micros;
                let mut j = k;
                while j < shuffled.len() && shuffled[j].at_micros == ts {
                    j += 1;
                }
                // `position` maps duplicates to the first original index,
                // so within a group the mapped indices are nondecreasing
                // exactly when original order is preserved.
                for w in originals[k..j].windows(2) {
                    assert!(w[0] <= w[1], "case {i}: group order broken at ts {ts}");
                }
                k = j;
            }
        }
    }

    /// A zero bound injects nothing.
    #[test]
    fn zero_bound_is_identity() {
        let case = generate_case(case_seed(23, 0));
        let same = inject_disorder(&case.arrivals, VDur::from_micros(0), 9);
        assert_eq!(same.len(), case.arrivals.len());
        for (a, b) in same.iter().zip(&case.arrivals) {
            assert_eq!((a.stream, a.at_micros), (b.stream, b.at_micros));
        }
    }

    /// A handful of full disorder cases pass end to end.
    #[test]
    fn small_disorder_sweep_passes() {
        install_quiet_hook();
        for i in 0..2u64 {
            let case = generate_case(case_seed(31, i));
            if let Err(f) = run_disorder_case(&case) {
                panic!("disorder case {i} failed: {f}");
            }
        }
    }
}
