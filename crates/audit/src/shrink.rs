//! Greedy delta-debugging shrinker for failing audit cases.

use crate::gen::{Arrival, Case};
use crate::run::run_case_on;

/// Greedily minimises the arrival trace of a failing `case`: repeatedly
/// tries dropping contiguous chunks (halving the chunk size down to single
/// arrivals) and keeps any removal after which the audit still fails.
///
/// The returned trace is 1-minimal with respect to single-arrival removal
/// (dropping any one remaining arrival makes the case pass), though not
/// necessarily globally minimal. The failure reproduced at the end may be
/// a different policy/contract than the original — any failure counts.
///
/// The caller should silence the panic hook first: invariant violations
/// surface as panics, and the shrinker triggers them dozens of times.
pub fn shrink_case(case: &Case) -> Vec<Arrival> {
    let fails = |sub: &[Arrival]| run_case_on(case, sub).is_err();
    let mut current = case.arrivals.clone();
    if !fails(&current) {
        // Not reproducible (e.g. the failure needed the full trace's exact
        // seq numbering); report the whole trace rather than lying.
        return current;
    }
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < current.len() {
            let end = (i + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(i..end);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                // Same index now holds fresh content; retry in place.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    current
}
