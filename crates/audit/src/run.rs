//! The differential runner: engine vs oracle, per policy, per memory mode,
//! with per-arrival structural invariant checks.

use crate::gen::{Arrival, Case, ReducedMemory};
use mstream_core::ingest::{FnSink, IngestRole};
use mstream_core::shard::{Backpressure, HotKeyConfig, ShardConfig};
use mstream_core::{BatchItem, EngineBuilder, EngineMetrics};
use mstream_join::{Bindings, ExactJoin};
use mstream_shed_policies::{parse_policy, ALL_POLICY_NAMES};
use mstream_sketch::BankConfig;
use mstream_types::{Partitioning, Row, SeqNo, StreamId, Tuple, VTime, Value};
use mstream_window::{QueueVictim, ShedQueue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What contract a failing case violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// At 100% memory the engine's result multiset differed from the
    /// exact join's.
    ExactMismatch,
    /// Under reduced memory the engine emitted a result the oracle never
    /// produced (shed output must be a sub-multiset of exact output).
    NotSubMultiset,
    /// A structural invariant check (or any engine internals) panicked.
    InvariantPanic,
    /// The standalone [`ShedQueue`] churn audit panicked.
    QueuePanic,
    /// The sharded engine violated its partitioning contract: wrong shard
    /// count, missing/spurious degrade reason, or channel drops under
    /// blocking backpressure.
    ShardContract,
    /// The event-time front end broke a disorder contract: a `K = 0`
    /// in-order run diverged from the trusting engine, a covered-disorder
    /// run failed to reproduce the in-order output, or a beyond-bound
    /// arrival was not dropped-and-counted cleanly.
    DisorderContract,
    /// A score-cache A/B pair diverged: with the productivity score cache
    /// forced on, the engine emitted different rows or different
    /// (cache/ns-normalized) metrics than with it forced off. The memo is
    /// supposed to be a pure evaluation shortcut (DESIGN.md §16).
    ScoreCacheDivergence,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::ExactMismatch => "exact-mismatch (100% memory)",
            FailureKind::NotSubMultiset => "not-a-sub-multiset (reduced memory)",
            FailureKind::InvariantPanic => "invariant-violation",
            FailureKind::QueuePanic => "queue-invariant-violation",
            FailureKind::ShardContract => "shard-contract-violation",
            FailureKind::DisorderContract => "disorder-contract-violation (event time)",
            FailureKind::ScoreCacheDivergence => "score-cache-divergence (on/off A/B)",
        };
        f.write_str(s)
    }
}

/// A reproducible audit failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Policy under which the failure surfaced (empty for the queue audit).
    pub policy: String,
    /// Violated contract.
    pub kind: FailureKind,
    /// Human-readable specifics (first differing row, panic message, …).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.policy.is_empty() {
            write!(f, "{}: {}", self.kind, self.detail)
        } else {
            write!(f, "[{}] {}: {}", self.policy, self.kind, self.detail)
        }
    }
}

/// One canonical result row: per-stream `(seq, values…)` flattened in
/// stream order. Two executors agree byte-for-byte on a match exactly when
/// these rows are equal, because sequence numbers are assigned identically
/// (0, 1, 2, … in arrival order) by both.
pub(crate) fn row(b: &Bindings<'_>, n: usize) -> Vec<u64> {
    let mut r = Vec::with_capacity(n * 3);
    for k in 0..n {
        let t = b.tuple(StreamId(k));
        r.push(t.seq.0);
        r.extend(t.values.iter().map(|v| v.0));
    }
    r
}

/// Runs the full differential audit for `case`.
pub fn run_case(case: &Case) -> Result<(), Failure> {
    run_case_on(case, &case.arrivals)
}

/// Runs the differential audit for `case` restricted to `arrivals` (the
/// shrinker re-enters here with progressively smaller traces).
pub fn run_case_on(case: &Case, arrivals: &[Arrival]) -> Result<(), Failure> {
    let n = case.n_streams();

    let mut oracle = ExactJoin::new(case.query.clone());
    let mut oracle_rows: Vec<Vec<u64>> = Vec::new();
    for a in arrivals {
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        oracle.process_each(
            StreamId(a.stream),
            values,
            VTime::from_micros(a.at_micros),
            |b| oracle_rows.push(row(b, n)),
        );
    }
    oracle_rows.sort();

    for &name in ALL_POLICY_NAMES {
        let full = drive_engine(case, arrivals, name, true)?;
        if full != oracle_rows {
            return Err(Failure {
                policy: name.into(),
                kind: FailureKind::ExactMismatch,
                detail: first_diff(&full, &oracle_rows),
            });
        }
        let shed = drive_engine(case, arrivals, name, false)?;
        if let Some(extra) = not_in_multiset(&shed, &oracle_rows) {
            return Err(Failure {
                policy: name.into(),
                kind: FailureKind::NotSubMultiset,
                detail: format!("shed run emitted a row the oracle never did: {extra:?}"),
            });
        }
    }

    // The sharded engine must honour the same two contracts (plus its
    // partitioning metadata) for a deterministic and a sketch policy.
    for name in ["MSketch", "FIFO"] {
        let label = format!("{name}@x{}", case.shards);
        let full = drive_sharded(case, arrivals, name, true)?;
        if full != oracle_rows {
            return Err(Failure {
                policy: label.clone(),
                kind: FailureKind::ExactMismatch,
                detail: first_diff(&full, &oracle_rows),
            });
        }
        let shed = drive_sharded(case, arrivals, name, false)?;
        if let Some(extra) = not_in_multiset(&shed, &oracle_rows) {
            return Err(Failure {
                policy: label,
                kind: FailureKind::NotSubMultiset,
                detail: format!("sharded shed run emitted a row the oracle never did: {extra:?}"),
            });
        }
    }

    queue_audit(case, arrivals)
}

/// Strips the metric fields that legitimately differ between a
/// score-cache-on and score-cache-off run of the same trace: the
/// wall-clock stage timers, the score-cache counters themselves, and the
/// packed-sign cache counters (a score-cache hit skips the packed-sign
/// computation entirely, so sign traffic diverges by design). Everything
/// else — shed counts, emissions, replication, late drops — must match
/// bit for bit.
pub(crate) fn normalized_metrics(m: &EngineMetrics) -> EngineMetrics {
    let mut m = m.clone();
    m.sketch_observe_ns = 0;
    m.priority_rebuild_ns = 0;
    m.score_ns = 0;
    m.sign_cache_hits = 0;
    m.sign_cache_misses = 0;
    m.score_cache_hits = 0;
    m.score_cache_misses = 0;
    m
}

/// Runs one (policy, memory-mode) configuration. On a plain case this is
/// a single engine run; on a `cache_ab` case the trace is driven twice —
/// productivity score cache forced on, then forced off — and any
/// divergence in rows or normalized metrics is a
/// [`FailureKind::ScoreCacheDivergence`].
fn drive_engine(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
) -> Result<Vec<Vec<u64>>, Failure> {
    if !case.cache_ab {
        return Ok(drive_engine_with(case, arrivals, policy, full_memory, None)?.0);
    }
    let (rows_on, metrics_on) = drive_engine_with(case, arrivals, policy, full_memory, Some(true))?;
    let (rows_off, metrics_off) =
        drive_engine_with(case, arrivals, policy, full_memory, Some(false))?;
    let fail = |detail: String| Failure {
        policy: policy.into(),
        kind: FailureKind::ScoreCacheDivergence,
        detail,
    };
    if rows_on != rows_off {
        return Err(fail(format!(
            "emissions diverge (memory {}): {}",
            if full_memory { "full" } else { "reduced" },
            first_diff(&rows_on, &rows_off)
        )));
    }
    if normalized_metrics(&metrics_on) != normalized_metrics(&metrics_off) {
        return Err(fail(format!(
            "normalized metrics diverge (memory {}): on {:?} vs off {:?}",
            if full_memory { "full" } else { "reduced" },
            normalized_metrics(&metrics_on),
            normalized_metrics(&metrics_off)
        )));
    }
    Ok(rows_on)
}

/// Builds the engine for one (policy, memory-mode) run and drives the
/// trace through it, collecting canonical rows and re-checking structural
/// invariants after every arrival. Panics anywhere inside the engine are
/// converted into [`FailureKind::InvariantPanic`]. `cache` pins the
/// productivity score cache on/off for this instance (`None` leaves the
/// process-wide default).
fn drive_engine_with(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
    cache: Option<bool>,
) -> Result<(Vec<Vec<u64>>, EngineMetrics), Failure> {
    let n = case.n_streams();
    let fail = |detail: String, kind| Failure {
        policy: policy.into(),
        kind,
        detail,
    };
    let mut builder = configured_builder(case, arrivals, policy, full_memory);
    if let Some(on) = cache {
        builder = builder.score_cache(on);
    }
    let mut engine = builder
        .build()
        .map_err(|e| fail(format!("engine construction failed: {e:?}"), FailureKind::InvariantPanic))?;

    // The case's batch knob picks the ingest path: 1 drives the
    // per-arrival reference loop, >1 drives the batch-amortized path in
    // `case.batch`-sized runs. Both must yield identical rows; invariants
    // are re-checked at each boundary where the engine is quiescent.
    let mut rows = Vec::new();
    let batch = case.batch.max(1);
    for (ci, chunk) in arrivals.chunks(batch).enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sink = FnSink(|b: &Bindings<'_>| rows.push(row(b, n)));
            if batch == 1 {
                let a = &chunk[0];
                let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
                let now = VTime::from_micros(a.at_micros);
                let tuple =
                    engine.mint(mstream_core::Arrival::new(StreamId(a.stream), values, now));
                engine.ingest_tuple(tuple, now, &mut sink);
            } else {
                let mut items: Vec<BatchItem> = chunk
                    .iter()
                    .map(|a| {
                        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
                        let now = VTime::from_micros(a.at_micros);
                        let tuple = engine.mint(mstream_core::Arrival::new(
                            StreamId(a.stream),
                            values,
                            now,
                        ));
                        BatchItem {
                            tuple,
                            now,
                            role: IngestRole::FULL,
                        }
                    })
                    .collect();
                engine.ingest_tuple_batch(&mut items, &mut sink);
            }
            engine.check_invariants();
        }));
        if let Err(payload) = outcome {
            return Err(fail(
                format!("arrival batch #{ci} (x{batch}): {}", panic_message(&payload)),
                FailureKind::InvariantPanic,
            ));
        }
    }
    rows.sort();
    let metrics = engine.metrics().clone();
    Ok((rows, metrics))
}

/// The shared [`EngineBuilder`] setup for one (policy, memory-mode) run:
/// explicit epoch and sketch bank, case-seeded determinism, and the case's
/// reduced-memory discipline (full-memory runs size every window to hold
/// the whole trace).
fn configured_builder(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
) -> EngineBuilder {
    let builder = EngineBuilder::new(case.query.clone())
        .boxed_policy(parse_policy(policy).expect("every registered policy parses"))
        .epoch(case.epoch)
        .bank(BankConfig {
            s1: 32,
            s2: 1,
            seed: case.seed,
        })
        .seed(case.seed);
    if full_memory {
        builder.capacity_per_window(arrivals.len() + 1)
    } else {
        match &case.reduced {
            ReducedMemory::PerWindow(c) => builder.capacity_per_window(*c),
            ReducedMemory::PerWindowEach(cs) => builder.capacities(cs.clone()),
            ReducedMemory::GlobalPool(total) => builder.global_pool(*total),
        }
    }
}

/// Drives the trace through a [`mstream_core::ShardedJoinEngine`] at the
/// case's shard count, checks the partitioning contract (real fan-out on
/// partitionable queries, broadcast execution at full width otherwise, no
/// drops under blocking backpressure), and returns the merged canonical
/// rows. The hot-key detector runs with an aggressive decision cadence so
/// even these short traces promote and split heavy hitters (the Zipf-hot
/// case class guarantees skewed inputs every sweep).
fn drive_sharded(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
) -> Result<Vec<Vec<u64>>, Failure> {
    if !case.cache_ab {
        return Ok(drive_sharded_with(case, arrivals, policy, full_memory, None)?.0);
    }
    let (rows_on, metrics_on) =
        drive_sharded_with(case, arrivals, policy, full_memory, Some(true))?;
    let (rows_off, metrics_off) =
        drive_sharded_with(case, arrivals, policy, full_memory, Some(false))?;
    let fail = |detail: String| Failure {
        policy: format!("{policy}@x{}", case.shards),
        kind: FailureKind::ScoreCacheDivergence,
        detail,
    };
    if rows_on != rows_off {
        return Err(fail(format!(
            "sharded emissions diverge (memory {}): {}",
            if full_memory { "full" } else { "reduced" },
            first_diff(&rows_on, &rows_off)
        )));
    }
    if normalized_metrics(&metrics_on) != normalized_metrics(&metrics_off) {
        return Err(fail(format!(
            "sharded normalized metrics diverge (memory {}): on {:?} vs off {:?}",
            if full_memory { "full" } else { "reduced" },
            normalized_metrics(&metrics_on),
            normalized_metrics(&metrics_off)
        )));
    }
    Ok(rows_on)
}

/// The single-run body behind [`drive_sharded`]: returns the merged rows
/// plus the combined cross-shard metrics so the A/B wrapper can compare
/// both. `cache` pins the score cache for every worker in the instance.
fn drive_sharded_with(
    case: &Case,
    arrivals: &[Arrival],
    policy: &str,
    full_memory: bool,
    cache: Option<bool>,
) -> Result<(Vec<Vec<u64>>, EngineMetrics), Failure> {
    let fail = |detail: String, kind| Failure {
        policy: format!("{policy}@x{}", case.shards),
        kind,
        detail,
    };
    let mut builder = configured_builder(case, arrivals, policy, full_memory);
    if let Some(on) = cache {
        builder = builder.score_cache(on);
    }
    if full_memory {
        // The shard layer splits the budget S ways; skewed routing may put
        // most tuples on one shard, so "full memory" must survive the
        // worst case: the whole trace landing on a single worker.
        builder = builder.capacity_per_window((arrivals.len() + 1) * case.shards);
    }
    let mut engine = builder
        .shard_config(ShardConfig {
            shards: case.shards,
            channel_capacity: 4,
            batch_size: 3, // deliberately small: exercises mid-trace flushes
            backpressure: Backpressure::Block,
            collect_rows: true,
            route_only: false,
            hot_keys: HotKeyConfig {
                enabled: true,
                capacity: 8,
                tracker_capacity: 64,
                epoch_arrivals: 24,
                promote_permille: 200,
                demote_permille: 100,
            },
            broadcast: true,
            // Rotates with the case's batch knob so the sweep covers both
            // the per-arrival and batch-amortized worker paths.
            batch_ingest: case.batch > 1,
        })
        .build_sharded()
        .map_err(|e| fail(format!("sharded construction failed: {e:?}"), FailureKind::InvariantPanic))?;

    match case.query.partitioning() {
        Partitioning::ByKey { .. } => {
            if engine.shards() != case.shards || engine.degraded().is_some() {
                return Err(fail(
                    format!(
                        "partitionable query ran on {} shards (requested {}), degraded: {:?}",
                        engine.shards(),
                        case.shards,
                        engine.degraded()
                    ),
                    FailureKind::ShardContract,
                ));
            }
        }
        Partitioning::Single { .. } => {
            if engine.shards() != case.shards || engine.degraded().is_some() {
                return Err(fail(
                    format!(
                        "non-partitionable query must run broadcast at {} shards; got {} shards, degraded: {:?}",
                        case.shards,
                        engine.shards(),
                        engine.degraded()
                    ),
                    FailureKind::ShardContract,
                ));
            }
        }
    }

    let expect_shards = engine.shards();
    let expect_degraded = engine.degraded().map(str::to_owned);
    for a in arrivals {
        let values: Vec<Value> = a.values.iter().map(|&v| Value(v)).collect();
        engine.ingest(mstream_core::Arrival::new(
            StreamId(a.stream),
            values,
            VTime::from_micros(a.at_micros),
        ));
    }
    let report = engine
        .finish()
        .map_err(|e| fail(format!("{e}"), FailureKind::InvariantPanic))?;
    if report.shed_channel != 0 {
        return Err(fail(
            format!("{} tuples dropped under Backpressure::Block", report.shed_channel),
            FailureKind::ShardContract,
        ));
    }
    if report.combined.shards != expect_shards
        || report.combined.degraded != expect_degraded
        || report.per_shard.len() != expect_shards
    {
        return Err(fail(
            format!(
                "merged report disagrees with the engine: shards {} vs {}, degraded {:?} vs {:?}, {} per-shard entries",
                report.combined.shards,
                expect_shards,
                report.combined.degraded,
                expect_degraded,
                report.per_shard.len()
            ),
            FailureKind::ShardContract,
        ));
    }

    let n = case.n_streams();
    let mut rows: Vec<Vec<u64>> = report
        .rows
        .expect("collect_rows was set")
        .iter()
        .map(|result| {
            let mut r = Vec::with_capacity(n * 3);
            for t in result {
                r.push(t.seq.0);
                r.extend(t.values.iter().map(|v| v.0));
            }
            r
        })
        .collect();
    rows.sort();
    Ok((rows, report.combined.metrics))
}

/// Exercises [`ShedQueue`] with a seeded churn of offers and pops derived
/// from the case trace, re-checking its invariants after every operation.
fn queue_audit(case: &Case, arrivals: &[Arrival]) -> Result<(), Failure> {
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xA5A5_5A5A_A5A5_5A5A);
    let capacity = rng.gen_range(1..6usize);
    let mut queue = ShedQueue::new(capacity);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for (i, a) in arrivals.iter().enumerate() {
            let tuple = Tuple::new(
                StreamId(a.stream),
                VTime::from_micros(a.at_micros),
                SeqNo(i as u64),
                a.values.iter().map(|&v| Value(v)).collect::<Row>(),
            );
            let mode = match rng.gen_range(0..3u8) {
                0 => QueueVictim::MinPriority,
                1 => QueueVictim::Random,
                _ => QueueVictim::Oldest,
            };
            let score = rng.gen_range(0.0..100.0f64);
            queue.offer(tuple, score, mode, &mut rng);
            queue.check_invariants();
            if rng.gen_bool(0.3) {
                let _ = queue.pop_front();
                queue.check_invariants();
            }
        }
    }));
    outcome.map_err(|payload| Failure {
        policy: String::new(),
        kind: FailureKind::QueuePanic,
        detail: format!("capacity {capacity}: {}", panic_message(&payload)),
    })
}

/// Last panic rendered by the [`install_quiet_hook`] hook (message +
/// source location), for reports where the payload itself is opaque.
static LAST_PANIC: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

/// Replaces the default panic hook with one that stays quiet (the
/// shrinker re-triggers failures dozens of times) but records each panic's
/// message and location for the audit report. Call once before auditing.
pub fn install_quiet_hook() {
    std::panic::set_hook(Box::new(|info| {
        *LAST_PANIC.lock().unwrap() = Some(info.to_string());
    }));
}

/// Extracts the human-readable message from a caught panic: the payload
/// string if it has one, else whatever [`install_quiet_hook`] recorded.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(rendered) = LAST_PANIC.lock().unwrap().take() {
        rendered
    } else {
        "non-string panic payload".into()
    }
}

/// Describes the first discrepancy between two sorted row multisets.
pub(crate) fn first_diff(got: &[Vec<u64>], want: &[Vec<u64>]) -> String {
    if got.len() != want.len() {
        return format!(
            "row count {} vs oracle {} (first engine row missing from oracle / vice versa: {:?})",
            got.len(),
            want.len(),
            got.iter().find(|r| !want.contains(r)).or_else(|| want.iter().find(|r| !got.contains(r)))
        );
    }
    for (g, w) in got.iter().zip(want) {
        if g != w {
            return format!("first divergent row: engine {g:?} vs oracle {w:?}");
        }
    }
    "multisets differ in an unlocated way".into()
}

/// Returns a row of `small` that exceeds its multiplicity in `big`, if any.
pub(crate) fn not_in_multiset(small: &[Vec<u64>], big: &[Vec<u64>]) -> Option<Vec<u64>> {
    let mut budget: HashMap<&[u64], i64> = HashMap::new();
    for r in big {
        *budget.entry(r.as_slice()).or_insert(0) += 1;
    }
    for r in small {
        let b = budget.entry(r.as_slice()).or_insert(0);
        *b -= 1;
        if *b < 0 {
            return Some(r.clone());
        }
    }
    None
}
