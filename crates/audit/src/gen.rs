//! Seeded random generation of queries and workloads.
//!
//! Everything is a pure function of the case seed, so a failing case is
//! reproduced exactly by `replay <seed>` — including the engine's own
//! randomness, which is seeded from the same value.

use mstream_sketch::EpochSpec;
use mstream_types::{
    AttrRef, Catalog, EquiPredicate, JoinQuery, StreamId, StreamSchema, VDur, WindowSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated stream arrival.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Target stream index.
    pub stream: usize,
    /// Attribute values (every generated schema has two attributes).
    pub values: Vec<u64>,
    /// Processing instant in virtual microseconds (nondecreasing).
    pub at_micros: u64,
}

/// Memory discipline for a case's reduced-memory run.
#[derive(Clone, Debug)]
pub enum ReducedMemory {
    /// The same small capacity on every window.
    PerWindow(usize),
    /// Heterogeneous per-window capacities (one entry per stream).
    PerWindowEach(Vec<usize>),
    /// One shared pool across all windows.
    GlobalPool(usize),
}

/// A fully materialised audit case: query, engine configuration knobs and
/// the arrival trace.
pub struct Case {
    /// The seed this case was generated from.
    pub seed: u64,
    /// The (validated) join query: 2–4 streams, chain or cyclic shape,
    /// possibly heterogeneous time/tuple windows.
    pub query: JoinQuery,
    /// Explicit tumbling-epoch discipline (mixed-window queries have no
    /// derivable default, so the generator always picks one).
    pub epoch: EpochSpec,
    /// Memory discipline for the reduced-memory run.
    pub reduced: ReducedMemory,
    /// Worker count for the sharded differential runs (2 or 4). Cases
    /// whose query cannot partition exercise the broadcast path instead.
    pub shards: usize,
    /// Whether this case pins the Zipf-hot-key class: a key-partitionable
    /// query whose join key concentrates ~60% of arrivals on one value,
    /// forcing the skew router's promote/split/demote machinery into the
    /// differential (every `seed % 8 == 4`).
    pub zipf_hot: bool,
    /// Ingest batch size for the engine-side runs: 1 feeds per-arrival,
    /// larger values drive the batch-amortized path (which must replay
    /// bit-identically). Rotates `1, 1, 7, 64` with the seed so every
    /// sweep covers both paths and two batch granularities.
    pub batch: usize,
    /// Whether this case pins the score-cache A/B class (every odd seed):
    /// each engine run is driven twice — productivity score cache on and
    /// off — and the two runs must be bit-identical in rows and in every
    /// metric except the cache counters and wall-clock ns themselves
    /// (DESIGN.md §16).
    pub cache_ab: bool,
    /// The arrival trace.
    pub arrivals: Vec<Arrival>,
}

impl Case {
    /// The number of streams in this case's query.
    pub fn n_streams(&self) -> usize {
        self.query.n_streams()
    }
}

/// Generates the audit case for `seed`.
pub fn generate_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=4usize);

    let mut catalog = Catalog::new();
    for k in 0..n {
        catalog.add_stream(StreamSchema::new(format!("R{}", k + 1), &["A1", "A2"]));
    }

    // Every eighth seed pins the case class the sharded tick path depends
    // on — an all-tuple-window, key-partitionable query — so every sweep
    // is guaranteed real multi-shard runs with coalesced expiry ticks
    // (otherwise keyed × all-tuples is a ~12% coincidence per case).
    let pinned_tuple_shard = seed % 8 == 0;

    // Every eighth seed (offset 4, disjoint from the tuple-shard class)
    // pins the Zipf-hot-key class: keyed shape + one join-key value
    // carrying ~60% of arrivals, so every sweep drives the skew router's
    // heavy-hitter splitting through the exactness differential.
    let zipf_hot = seed % 8 == 4;

    // Window flavour: all-time, all-tuple, or heterogeneous per stream.
    let flavour = if pinned_tuple_shard {
        1
    } else {
        rng.gen_range(0..3u8)
    };
    let windows: Vec<WindowSpec> = (0..n)
        .map(|_| {
            let time = match flavour {
                0 => true,
                1 => false,
                _ => rng.gen_bool(0.5),
            };
            if time {
                WindowSpec::Time(VDur::from_secs(rng.gen_range(4..40u64)))
            } else {
                WindowSpec::Tuples(rng.gen_range(3..24u64))
            }
        })
        .collect();
    let all_tuples = windows.iter().all(|w| matches!(w, WindowSpec::Tuples(_)));

    // Join shape: a chain through all streams, optionally closed into a
    // cycle (3+ streams), optionally doubled on one edge. Attribute choices
    // are random on both sides, except that ~35% of cases pin every
    // predicate to attribute 0 — a guaranteed key-partitionable shape, so
    // the sharded differential regularly exercises real multi-shard runs.
    let keyed = pinned_tuple_shard || zipf_hot || rng.gen_bool(0.35);
    let attr = |rng: &mut StdRng| if keyed { 0 } else { rng.gen_range(0..2usize) };
    let mut predicates = Vec::new();
    for k in 0..n - 1 {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), attr(&mut rng)),
            AttrRef::new(StreamId(k + 1), attr(&mut rng)),
        ));
    }
    if n >= 3 && rng.gen_bool(0.3) {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(n - 1), attr(&mut rng)),
            AttrRef::new(StreamId(0), attr(&mut rng)),
        ));
    }
    if rng.gen_bool(0.2) {
        let k = rng.gen_range(0..n - 1);
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), attr(&mut rng)),
            AttrRef::new(StreamId(k + 1), attr(&mut rng)),
        ));
    }
    let query = JoinQuery::new(catalog, predicates, windows)
        .expect("generated queries are connected by construction");

    let epoch = if all_tuples {
        EpochSpec::PerStreamTuples(rng.gen_range(4..32u64))
    } else {
        EpochSpec::Time(VDur::from_secs(rng.gen_range(2..20u64)))
    };

    // Small value domains force joins; bursty clocks force expirations to
    // land on and around window boundaries.
    let domain = rng.gen_range(2..6u64);
    let len = rng.gen_range(60..200usize);
    let mut clock = 0u64;
    let arrivals = (0..len)
        .map(|_| {
            // ~1/4 of arrivals share the previous instant; the rest step
            // forward up to 2 virtual seconds.
            if !rng.gen_bool(0.25) {
                clock += rng.gen_range(1..2_000_000u64);
            }
            // Zipf-hot cases concentrate ~60% of join-key values (attr 0,
            // the partition key of every keyed shape) on value 0.
            let key = if zipf_hot && rng.gen_bool(0.6) {
                0
            } else {
                rng.gen_range(0..domain)
            };
            Arrival {
                stream: rng.gen_range(0..n),
                values: vec![key, rng.gen_range(0..domain)],
                at_micros: clock,
            }
        })
        .collect();

    let reduced = match rng.gen_range(0..3u8) {
        0 => ReducedMemory::PerWindow(rng.gen_range(2..8usize)),
        1 => ReducedMemory::PerWindowEach(
            (0..n).map(|_| rng.gen_range(2..8usize)).collect(),
        ),
        _ => ReducedMemory::GlobalPool(rng.gen_range(2..8usize) * n),
    };

    Case {
        seed,
        query,
        epoch,
        reduced,
        shards: if rng.gen_bool(0.5) { 2 } else { 4 },
        zipf_hot,
        // Derived arithmetically (no rng draw) so the pinned seed classes
        // above keep generating byte-identical cases.
        batch: [1, 1, 7, 64][(seed % 4) as usize],
        cache_ab: seed % 2 == 1,
        arrivals,
    }
}

/// How one query of a [`MultiCase`] relates to the queries before it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixKind {
    /// The first query of the set.
    Base,
    /// An exact clone of an earlier query (collapses into its class).
    Duplicate,
    /// The same stream span as an earlier query with fresh windows and
    /// attribute choices — shares stores where `(stream, window)` agree.
    Overlap,
    /// An independently drawn stream span (disjoint when the pool allows).
    Fresh,
}

/// A multi-query audit case: 2–4 standing queries over a shared pool of
/// streams `R1..R5` — a mix of exact duplicates, overlapping subgraphs and
/// independent spans — plus one arrival trace over the union of their
/// streams. Windows are all time-based (the solo sweep owns tuple-window
/// coverage; one epoch discipline then serves every query).
pub struct MultiCase {
    /// The seed this case was generated from.
    pub seed: u64,
    /// The standing queries, in registration order.
    pub queries: Vec<JoinQuery>,
    /// How each query relates to its predecessors (same indexing).
    pub kinds: Vec<MixKind>,
    /// Explicit tumbling-epoch discipline shared by every query.
    pub epoch: EpochSpec,
    /// Reduced per-window capacity (the shared data plane's one memory
    /// mode).
    pub capacity: usize,
    /// Whether every predicate of every query joins on attribute 0 — the
    /// key-partitionable class, pinned on even seeds so the sharded multi
    /// differential regularly runs on two real shards.
    pub keyed: bool,
    /// The score-cache A/B class (odd seeds, mirroring the solo sweep):
    /// the in-process engine runs cache-on and cache-off and must match
    /// bit for bit (DESIGN.md §16).
    pub cache_ab: bool,
    /// The arrival trace. `stream` is the *pool* index; the runner
    /// resolves it to the engine's union-catalog id by name (`R<pool+1>`).
    pub arrivals: Vec<Arrival>,
}

/// Generates the multi-query audit case for `seed`.
pub fn generate_multi_case(seed: u64) -> MultiCase {
    const POOL: usize = 5;
    const WINDOW_SECS: [u64; 3] = [6, 12, 24];
    let mut rng = StdRng::seed_from_u64(seed);
    let keyed = seed % 2 == 0;
    let n_queries = rng.gen_range(2..=4usize);

    fn span(rng: &mut StdRng) -> (usize, usize) {
        let m = rng.gen_range(2..=3usize);
        let lo = rng.gen_range(0..=POOL - m);
        (lo, lo + m)
    }
    // A chain query over the pool streams `lo..hi`, with windows drawn
    // from a deliberately tiny set so overlapping queries regularly land
    // on the same `(stream, window)` store key.
    fn build(rng: &mut StdRng, (lo, hi): (usize, usize), keyed: bool) -> JoinQuery {
        let m = hi - lo;
        let mut catalog = Catalog::new();
        for p in lo..hi {
            catalog.add_stream(StreamSchema::new(format!("R{}", p + 1), &["A1", "A2"]));
        }
        let windows: Vec<WindowSpec> = (0..m)
            .map(|_| {
                WindowSpec::Time(VDur::from_secs(WINDOW_SECS[rng.gen_range(0..3usize)]))
            })
            .collect();
        let attr = |rng: &mut StdRng| if keyed { 0 } else { rng.gen_range(0..2usize) };
        let predicates: Vec<EquiPredicate> = (0..m - 1)
            .map(|k| {
                EquiPredicate::new(
                    AttrRef::new(StreamId(k), attr(rng)),
                    AttrRef::new(StreamId(k + 1), attr(rng)),
                )
            })
            .collect();
        JoinQuery::new(catalog, predicates, windows).expect("chains are connected")
    }

    let mut queries = Vec::with_capacity(n_queries);
    let mut spans = Vec::with_capacity(n_queries);
    let mut kinds = Vec::with_capacity(n_queries);
    let first = span(&mut rng);
    queries.push(build(&mut rng, first, keyed));
    spans.push(first);
    kinds.push(MixKind::Base);
    for _ in 1..n_queries {
        match rng.gen_range(0..3u8) {
            0 => {
                let i = rng.gen_range(0..queries.len());
                queries.push(queries[i].clone());
                spans.push(spans[i]);
                kinds.push(MixKind::Duplicate);
            }
            1 => {
                let i = rng.gen_range(0..spans.len());
                queries.push(build(&mut rng, spans[i], keyed));
                spans.push(spans[i]);
                kinds.push(MixKind::Overlap);
            }
            _ => {
                let s = span(&mut rng);
                queries.push(build(&mut rng, s, keyed));
                spans.push(s);
                kinds.push(MixKind::Fresh);
            }
        }
    }

    let mut used: Vec<usize> = spans.iter().flat_map(|&(lo, hi)| lo..hi).collect();
    used.sort_unstable();
    used.dedup();

    let epoch = EpochSpec::Time(VDur::from_secs(rng.gen_range(2..10u64)));
    let capacity = rng.gen_range(2..8usize);
    let domain = rng.gen_range(2..6u64);
    let len = rng.gen_range(60..160usize);
    let mut clock = 0u64;
    let arrivals = (0..len)
        .map(|_| {
            if !rng.gen_bool(0.25) {
                clock += rng.gen_range(1..2_000_000u64);
            }
            Arrival {
                stream: used[rng.gen_range(0..used.len())],
                values: vec![rng.gen_range(0..domain), rng.gen_range(0..domain)],
                at_micros: clock,
            }
        })
        .collect();

    MultiCase {
        seed,
        queries,
        kinds,
        epoch,
        capacity,
        keyed,
        // Arithmetic (no rng draw): pinned classes stay byte-identical.
        cache_ab: seed % 2 == 1,
        arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::Partitioning;

    /// The pinned case class: every eighth seed must produce an
    /// all-tuple-window, key-partitionable query, so sweeps always cover
    /// the sharded coalesced-tick path with real multi-shard runs.
    #[test]
    fn every_eighth_seed_pins_sharded_tuple_windows() {
        for seed in [0u64, 8, 16, 64, 800, 4096] {
            let case = generate_case(seed);
            assert!(
                case.query
                    .windows()
                    .iter()
                    .all(|w| matches!(w, WindowSpec::Tuples(_))),
                "seed {seed}: pinned class must use tuple windows only"
            );
            assert!(
                matches!(case.query.partitioning(), Partitioning::ByKey { .. }),
                "seed {seed}: pinned class must partition by key"
            );
            assert!(case.shards >= 2, "pinned class runs multi-shard");
        }
    }

    /// Across a modest sweep the multi-query generator must emit all three
    /// mix kinds, both the keyed and the free-attribute class, and every
    /// query-set size from 2 to 4.
    #[test]
    fn multi_case_generator_covers_all_mix_kinds() {
        let (mut dup, mut overlap, mut fresh) = (false, false, false);
        let (mut keyed, mut free) = (false, false);
        let mut sizes = [false; 3];
        for seed in 0..60u64 {
            let case = generate_multi_case(seed);
            assert_eq!(case.kinds[0], MixKind::Base);
            assert_eq!(case.kinds.len(), case.queries.len());
            sizes[case.queries.len() - 2] = true;
            for k in &case.kinds[1..] {
                match k {
                    MixKind::Base => unreachable!("base is only first"),
                    MixKind::Duplicate => dup = true,
                    MixKind::Overlap => overlap = true,
                    MixKind::Fresh => fresh = true,
                }
            }
            if case.keyed {
                keyed = true;
                for q in &case.queries {
                    assert!(
                        matches!(q.partitioning(), Partitioning::ByKey { .. }),
                        "seed {seed}: keyed case has a non-partitionable query"
                    );
                }
            } else {
                free = true;
            }
            assert!(!case.arrivals.is_empty());
        }
        assert!(dup && overlap && fresh, "all three mix kinds generated");
        assert!(keyed && free, "both partitionability classes generated");
        assert!(sizes.iter().all(|&s| s), "query-set sizes 2..=4 generated");
    }

    /// The Zipf-hot-key case class: every `seed % 8 == 4` must produce a
    /// key-partitionable query whose join key (attribute 0) concentrates
    /// well over its uniform share on one hot value, so sweeps always run
    /// the skew router's splitting machinery through the differential.
    #[test]
    fn every_eighth_seed_offset_four_pins_zipf_hot_keys() {
        for seed in [4u64, 12, 20, 68, 804, 4100] {
            let case = generate_case(seed);
            assert!(case.zipf_hot, "seed {seed}: class flag must be set");
            assert!(
                matches!(case.query.partitioning(), Partitioning::ByKey { .. }),
                "seed {seed}: zipf-hot class must partition by key"
            );
            assert!(case.shards >= 2, "zipf-hot class runs multi-shard");
            let hot = case
                .arrivals
                .iter()
                .filter(|a| a.values[0] == 0)
                .count();
            assert!(
                hot * 2 > case.arrivals.len(),
                "seed {seed}: hot key carries {hot}/{} arrivals — not skewed",
                case.arrivals.len()
            );
        }
        let uniform = generate_case(3);
        assert!(!uniform.zipf_hot, "other seeds stay unpinned");
    }
}
