//! Seeded random generation of queries and workloads.
//!
//! Everything is a pure function of the case seed, so a failing case is
//! reproduced exactly by `replay <seed>` — including the engine's own
//! randomness, which is seeded from the same value.

use mstream_sketch::EpochSpec;
use mstream_types::{
    AttrRef, Catalog, EquiPredicate, JoinQuery, StreamId, StreamSchema, VDur, WindowSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated stream arrival.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Target stream index.
    pub stream: usize,
    /// Attribute values (every generated schema has two attributes).
    pub values: Vec<u64>,
    /// Processing instant in virtual microseconds (nondecreasing).
    pub at_micros: u64,
}

/// A fully materialised audit case: query, engine configuration knobs and
/// the arrival trace.
pub struct Case {
    /// The seed this case was generated from.
    pub seed: u64,
    /// The (validated) join query: 2–4 streams, chain or cyclic shape,
    /// possibly heterogeneous time/tuple windows.
    pub query: JoinQuery,
    /// Explicit tumbling-epoch discipline (mixed-window queries have no
    /// derivable default, so the generator always picks one).
    pub epoch: EpochSpec,
    /// Per-window capacity for the reduced-memory run.
    pub reduced_capacity: usize,
    /// Whether the reduced-memory run uses a shared global pool instead of
    /// per-window allocations.
    pub use_pool: bool,
    /// The arrival trace.
    pub arrivals: Vec<Arrival>,
}

impl Case {
    /// The number of streams in this case's query.
    pub fn n_streams(&self) -> usize {
        self.query.n_streams()
    }
}

/// Generates the audit case for `seed`.
pub fn generate_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=4usize);

    let mut catalog = Catalog::new();
    for k in 0..n {
        catalog.add_stream(StreamSchema::new(format!("R{}", k + 1), &["A1", "A2"]));
    }

    // Window flavour: all-time, all-tuple, or heterogeneous per stream.
    let flavour = rng.gen_range(0..3u8);
    let windows: Vec<WindowSpec> = (0..n)
        .map(|_| {
            let time = match flavour {
                0 => true,
                1 => false,
                _ => rng.gen_bool(0.5),
            };
            if time {
                WindowSpec::Time(VDur::from_secs(rng.gen_range(4..40u64)))
            } else {
                WindowSpec::Tuples(rng.gen_range(3..24u64))
            }
        })
        .collect();
    let all_tuples = windows.iter().all(|w| matches!(w, WindowSpec::Tuples(_)));

    // Join shape: a chain through all streams, optionally closed into a
    // cycle (3+ streams), optionally doubled on one edge. Attribute choices
    // are random on both sides.
    let mut predicates = Vec::new();
    for k in 0..n - 1 {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), rng.gen_range(0..2usize)),
            AttrRef::new(StreamId(k + 1), rng.gen_range(0..2usize)),
        ));
    }
    if n >= 3 && rng.gen_bool(0.3) {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(n - 1), rng.gen_range(0..2usize)),
            AttrRef::new(StreamId(0), rng.gen_range(0..2usize)),
        ));
    }
    if rng.gen_bool(0.2) {
        let k = rng.gen_range(0..n - 1);
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), rng.gen_range(0..2usize)),
            AttrRef::new(StreamId(k + 1), rng.gen_range(0..2usize)),
        ));
    }
    let query = JoinQuery::new(catalog, predicates, windows)
        .expect("generated queries are connected by construction");

    let epoch = if all_tuples {
        EpochSpec::PerStreamTuples(rng.gen_range(4..32u64))
    } else {
        EpochSpec::Time(VDur::from_secs(rng.gen_range(2..20u64)))
    };

    // Small value domains force joins; bursty clocks force expirations to
    // land on and around window boundaries.
    let domain = rng.gen_range(2..6u64);
    let len = rng.gen_range(60..200usize);
    let mut clock = 0u64;
    let arrivals = (0..len)
        .map(|_| {
            // ~1/4 of arrivals share the previous instant; the rest step
            // forward up to 2 virtual seconds.
            if !rng.gen_bool(0.25) {
                clock += rng.gen_range(1..2_000_000u64);
            }
            Arrival {
                stream: rng.gen_range(0..n),
                values: vec![rng.gen_range(0..domain), rng.gen_range(0..domain)],
                at_micros: clock,
            }
        })
        .collect();

    Case {
        seed,
        query,
        epoch,
        reduced_capacity: rng.gen_range(2..8usize),
        use_pool: rng.gen_bool(0.3),
        arrivals,
    }
}
