//! Seeded random generation of queries and workloads.
//!
//! Everything is a pure function of the case seed, so a failing case is
//! reproduced exactly by `replay <seed>` — including the engine's own
//! randomness, which is seeded from the same value.

use mstream_sketch::EpochSpec;
use mstream_types::{
    AttrRef, Catalog, EquiPredicate, JoinQuery, StreamId, StreamSchema, VDur, WindowSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated stream arrival.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Target stream index.
    pub stream: usize,
    /// Attribute values (every generated schema has two attributes).
    pub values: Vec<u64>,
    /// Processing instant in virtual microseconds (nondecreasing).
    pub at_micros: u64,
}

/// Memory discipline for a case's reduced-memory run.
#[derive(Clone, Debug)]
pub enum ReducedMemory {
    /// The same small capacity on every window.
    PerWindow(usize),
    /// Heterogeneous per-window capacities (one entry per stream).
    PerWindowEach(Vec<usize>),
    /// One shared pool across all windows.
    GlobalPool(usize),
}

/// A fully materialised audit case: query, engine configuration knobs and
/// the arrival trace.
pub struct Case {
    /// The seed this case was generated from.
    pub seed: u64,
    /// The (validated) join query: 2–4 streams, chain or cyclic shape,
    /// possibly heterogeneous time/tuple windows.
    pub query: JoinQuery,
    /// Explicit tumbling-epoch discipline (mixed-window queries have no
    /// derivable default, so the generator always picks one).
    pub epoch: EpochSpec,
    /// Memory discipline for the reduced-memory run.
    pub reduced: ReducedMemory,
    /// Worker count for the sharded differential runs (2 or 4). Cases
    /// whose query cannot partition exercise the broadcast path instead.
    pub shards: usize,
    /// Whether this case pins the Zipf-hot-key class: a key-partitionable
    /// query whose join key concentrates ~60% of arrivals on one value,
    /// forcing the skew router's promote/split/demote machinery into the
    /// differential (every `seed % 8 == 4`).
    pub zipf_hot: bool,
    /// The arrival trace.
    pub arrivals: Vec<Arrival>,
}

impl Case {
    /// The number of streams in this case's query.
    pub fn n_streams(&self) -> usize {
        self.query.n_streams()
    }
}

/// Generates the audit case for `seed`.
pub fn generate_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=4usize);

    let mut catalog = Catalog::new();
    for k in 0..n {
        catalog.add_stream(StreamSchema::new(format!("R{}", k + 1), &["A1", "A2"]));
    }

    // Every eighth seed pins the case class the sharded tick path depends
    // on — an all-tuple-window, key-partitionable query — so every sweep
    // is guaranteed real multi-shard runs with coalesced expiry ticks
    // (otherwise keyed × all-tuples is a ~12% coincidence per case).
    let pinned_tuple_shard = seed % 8 == 0;

    // Every eighth seed (offset 4, disjoint from the tuple-shard class)
    // pins the Zipf-hot-key class: keyed shape + one join-key value
    // carrying ~60% of arrivals, so every sweep drives the skew router's
    // heavy-hitter splitting through the exactness differential.
    let zipf_hot = seed % 8 == 4;

    // Window flavour: all-time, all-tuple, or heterogeneous per stream.
    let flavour = if pinned_tuple_shard {
        1
    } else {
        rng.gen_range(0..3u8)
    };
    let windows: Vec<WindowSpec> = (0..n)
        .map(|_| {
            let time = match flavour {
                0 => true,
                1 => false,
                _ => rng.gen_bool(0.5),
            };
            if time {
                WindowSpec::Time(VDur::from_secs(rng.gen_range(4..40u64)))
            } else {
                WindowSpec::Tuples(rng.gen_range(3..24u64))
            }
        })
        .collect();
    let all_tuples = windows.iter().all(|w| matches!(w, WindowSpec::Tuples(_)));

    // Join shape: a chain through all streams, optionally closed into a
    // cycle (3+ streams), optionally doubled on one edge. Attribute choices
    // are random on both sides, except that ~35% of cases pin every
    // predicate to attribute 0 — a guaranteed key-partitionable shape, so
    // the sharded differential regularly exercises real multi-shard runs.
    let keyed = pinned_tuple_shard || zipf_hot || rng.gen_bool(0.35);
    let attr = |rng: &mut StdRng| if keyed { 0 } else { rng.gen_range(0..2usize) };
    let mut predicates = Vec::new();
    for k in 0..n - 1 {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), attr(&mut rng)),
            AttrRef::new(StreamId(k + 1), attr(&mut rng)),
        ));
    }
    if n >= 3 && rng.gen_bool(0.3) {
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(n - 1), attr(&mut rng)),
            AttrRef::new(StreamId(0), attr(&mut rng)),
        ));
    }
    if rng.gen_bool(0.2) {
        let k = rng.gen_range(0..n - 1);
        predicates.push(EquiPredicate::new(
            AttrRef::new(StreamId(k), attr(&mut rng)),
            AttrRef::new(StreamId(k + 1), attr(&mut rng)),
        ));
    }
    let query = JoinQuery::new(catalog, predicates, windows)
        .expect("generated queries are connected by construction");

    let epoch = if all_tuples {
        EpochSpec::PerStreamTuples(rng.gen_range(4..32u64))
    } else {
        EpochSpec::Time(VDur::from_secs(rng.gen_range(2..20u64)))
    };

    // Small value domains force joins; bursty clocks force expirations to
    // land on and around window boundaries.
    let domain = rng.gen_range(2..6u64);
    let len = rng.gen_range(60..200usize);
    let mut clock = 0u64;
    let arrivals = (0..len)
        .map(|_| {
            // ~1/4 of arrivals share the previous instant; the rest step
            // forward up to 2 virtual seconds.
            if !rng.gen_bool(0.25) {
                clock += rng.gen_range(1..2_000_000u64);
            }
            // Zipf-hot cases concentrate ~60% of join-key values (attr 0,
            // the partition key of every keyed shape) on value 0.
            let key = if zipf_hot && rng.gen_bool(0.6) {
                0
            } else {
                rng.gen_range(0..domain)
            };
            Arrival {
                stream: rng.gen_range(0..n),
                values: vec![key, rng.gen_range(0..domain)],
                at_micros: clock,
            }
        })
        .collect();

    let reduced = match rng.gen_range(0..3u8) {
        0 => ReducedMemory::PerWindow(rng.gen_range(2..8usize)),
        1 => ReducedMemory::PerWindowEach(
            (0..n).map(|_| rng.gen_range(2..8usize)).collect(),
        ),
        _ => ReducedMemory::GlobalPool(rng.gen_range(2..8usize) * n),
    };

    Case {
        seed,
        query,
        epoch,
        reduced,
        shards: if rng.gen_bool(0.5) { 2 } else { 4 },
        zipf_hot,
        arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_types::Partitioning;

    /// The pinned case class: every eighth seed must produce an
    /// all-tuple-window, key-partitionable query, so sweeps always cover
    /// the sharded coalesced-tick path with real multi-shard runs.
    #[test]
    fn every_eighth_seed_pins_sharded_tuple_windows() {
        for seed in [0u64, 8, 16, 64, 800, 4096] {
            let case = generate_case(seed);
            assert!(
                case.query
                    .windows()
                    .iter()
                    .all(|w| matches!(w, WindowSpec::Tuples(_))),
                "seed {seed}: pinned class must use tuple windows only"
            );
            assert!(
                matches!(case.query.partitioning(), Partitioning::ByKey { .. }),
                "seed {seed}: pinned class must partition by key"
            );
            assert!(case.shards >= 2, "pinned class runs multi-shard");
        }
    }

    /// The Zipf-hot-key case class: every `seed % 8 == 4` must produce a
    /// key-partitionable query whose join key (attribute 0) concentrates
    /// well over its uniform share on one hot value, so sweeps always run
    /// the skew router's splitting machinery through the differential.
    #[test]
    fn every_eighth_seed_offset_four_pins_zipf_hot_keys() {
        for seed in [4u64, 12, 20, 68, 804, 4100] {
            let case = generate_case(seed);
            assert!(case.zipf_hot, "seed {seed}: class flag must be set");
            assert!(
                matches!(case.query.partitioning(), Partitioning::ByKey { .. }),
                "seed {seed}: zipf-hot class must partition by key"
            );
            assert!(case.shards >= 2, "zipf-hot class runs multi-shard");
            let hot = case
                .arrivals
                .iter()
                .filter(|a| a.values[0] == 0)
                .count();
            assert!(
                hot * 2 > case.arrivals.len(),
                "seed {seed}: hot key carries {hot}/{} arrivals — not skewed",
                case.arrivals.len()
            );
        }
        let uniform = generate_case(3);
        assert!(!uniform.zipf_hot, "other seeds stay unpinned");
    }
}
