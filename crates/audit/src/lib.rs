//! Differential audit harness for the shedding join engine.
//!
//! The harness generates seeded random queries and workloads ([`gen`]),
//! runs every registered shedding policy's [`mstream_core::ShedJoinEngine`]
//! against the exact reference join ([`run`]), and checks two semantic
//! contracts plus the structural invariants of every stateful layer:
//!
//! 1. **At 100% memory** (windows sized to hold the whole trace) the
//!    shedding engine must produce a result multiset **byte-identical** to
//!    [`mstream_join::ExactJoin`]'s — shedding machinery that never sheds
//!    must be invisible.
//! 2. **Under reduced memory** the shed output must be a **sub-multiset**
//!    of the oracle's: shedding may lose results, never invent them. (This
//!    holds because a shed window's residents are always a subset of the
//!    exact window's, and arrival counting advances identically whether or
//!    not a tuple is retained.)
//! 3. After every arrival the engine's `check_invariants` (compiled under
//!    the `audit` feature) re-validates heap order, position-map
//!    bijections, arena/index/expiry-deque agreement, capacity bounds,
//!    epoch bookkeeping, and frozen-cross-product coherence.
//!
//! The [`disorder`] module adds the event-time contracts: a `K = 0`
//! in-order run is bit-identical to the trusting engine, a bounded shuffle
//! within `K` reproduces the in-order output exactly (every policy, both
//! memory modes, sharded included), and beyond-bound lateness is dropped
//! with accounting, never joined (`mstream-audit disorder --cases N`).
//!
//! The [`multi`] module adds the multi-query contracts: 2–4 standing
//! queries (duplicate, overlapping-subgraph and disjoint mixes) run on one
//! shared data plane, and each query's output is checked against its *own*
//! solo exact oracle — equal at 100% memory, a sub-multiset under reduced
//! memory — for every policy, in-process and sharded S ∈ {1, 2}
//! (`mstream-audit multi --cases N`).
//!
//! Every **odd-seed case** additionally pins the score-cache A/B class:
//! each engine run in the three audits above (single-engine, sharded,
//! event-time, multi-query) is driven twice — the epoch-memoized
//! productivity score cache forced on and forced off — and the two runs
//! must agree bit for bit on emissions and on every metric except the
//! cache counters and stage timers themselves (DESIGN.md §16).
//!
//! Failures print a replay line (`cargo run -p mstream-audit -- replay
//! <seed>`) and a greedily shrunk minimal trace ([`shrink`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disorder;
pub mod gen;
pub mod multi;
pub mod run;
pub mod shrink;

pub use disorder::{inject_disorder, run_disorder_case};
pub use gen::{generate_case, generate_multi_case, Arrival, Case, MixKind, MultiCase, ReducedMemory};
pub use multi::run_multi_case;
pub use run::{install_quiet_hook, run_case, run_case_on, Failure, FailureKind};
pub use shrink::shrink_case;

/// Derives the per-case seed for case `index` of a sweep started with
/// `master` (SplitMix64 finalizer — avoids correlated neighbour cases).
pub fn case_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        let a = generate_case(99);
        let b = generate_case(99);
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.stream, y.stream);
            assert_eq!(x.values, y.values);
            assert_eq!(x.at_micros, y.at_micros);
        }
        assert_eq!(format!("{:?}", a.reduced), format!("{:?}", b.reduced));
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.query.n_streams(), b.query.n_streams());
    }

    #[test]
    fn case_seeds_decorrelate_neighbours() {
        let s: Vec<u64> = (0..50).map(|i| case_seed(7, i)).collect();
        let mut unique = s.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), s.len(), "seed collisions");
    }

    #[test]
    fn generated_queries_cover_both_window_kinds() {
        let (mut time, mut tuples) = (false, false);
        for seed in 0..30u64 {
            let case = generate_case(case_seed(3, seed));
            for k in 0..case.n_streams() {
                match case.query.window(mstream_types::StreamId(k)) {
                    mstream_types::WindowSpec::Time(_) => time = true,
                    mstream_types::WindowSpec::Tuples(_) => tuples = true,
                }
            }
        }
        assert!(time && tuples, "generator must exercise both window kinds");
    }

    #[test]
    fn generator_covers_memory_modes_shards_and_partitionability() {
        use mstream_types::Partitioning;
        let (mut pw, mut pwe, mut pool) = (false, false, false);
        let (mut s2, mut s4) = (false, false);
        let (mut keyed, mut single) = (false, false);
        for i in 0..60u64 {
            let case = generate_case(case_seed(5, i));
            match case.reduced {
                ReducedMemory::PerWindow(_) => pw = true,
                ReducedMemory::PerWindowEach(_) => pwe = true,
                ReducedMemory::GlobalPool(_) => pool = true,
            }
            match case.shards {
                2 => s2 = true,
                4 => s4 = true,
                other => panic!("unexpected shard count {other}"),
            }
            match case.query.partitioning() {
                Partitioning::ByKey { .. } => keyed = true,
                Partitioning::Single { .. } => single = true,
            }
        }
        assert!(pw && pwe && pool, "all three memory modes generated");
        assert!(s2 && s4, "both shard counts generated");
        assert!(keyed && single, "both partitionability outcomes generated");
    }

    /// The score-cache A/B class is exactly the odd seeds, in both the
    /// solo and the multi-query generator, and a sweep of either parity
    /// exists (so the A/B and the plain classes both keep rotating).
    #[test]
    fn cache_ab_class_is_the_odd_seeds() {
        let (mut ab, mut plain) = (false, false);
        for i in 0..20u64 {
            let seed = case_seed(17, i);
            let case = generate_case(seed);
            assert_eq!(case.cache_ab, seed % 2 == 1);
            let multi = generate_multi_case(seed);
            assert_eq!(multi.cache_ab, seed % 2 == 1);
            if case.cache_ab {
                ab = true;
            } else {
                plain = true;
            }
        }
        assert!(ab && plain, "both parities must appear in a sweep");
    }

    #[test]
    fn small_sweep_passes() {
        install_quiet_hook();
        for i in 0..3u64 {
            let case = generate_case(case_seed(11, i));
            if let Err(f) = run_case(&case) {
                panic!("case {i} failed: {f}");
            }
        }
    }

    #[test]
    fn shrinker_returns_failing_subset_for_synthetic_failure() {
        // A passing case shrinks to itself (the guard path).
        install_quiet_hook();
        let case = generate_case(case_seed(11, 0));
        let kept = shrink_case(&case);
        assert_eq!(kept.len(), case.arrivals.len(), "passing case left intact");
    }
}
