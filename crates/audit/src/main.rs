//! `mstream-audit` — differential audit harness CLI.
//!
//! ```text
//! mstream-audit sweep --cases N [--seed S]   random sweep of N cases
//! mstream-audit replay <seed>                re-run one case by seed
//! ```
//!
//! Exit status: 0 if every case passed, 1 on the first failure (after
//! printing a replay line and a shrunk minimal trace), 2 on usage errors.

use mstream_audit::{
    case_seed, generate_case, generate_multi_case, install_quiet_hook, run_case,
    run_disorder_case, run_multi_case, shrink_case, Arrival, Case, Failure, MultiCase,
    ReducedMemory,
};
use mstream_types::StreamId;

const USAGE: &str = "usage:
  mstream-audit sweep --cases <N> [--seed <S>]
  mstream-audit replay <seed>
  mstream-audit disorder --cases <N> [--seed <S>]
  mstream-audit disorder-replay <seed>
  mstream-audit multi --cases <N> [--seed <S>]
  mstream-audit multi-replay <seed>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("sweep") => sweep(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("disorder") => disorder(&args[1..]),
        Some("disorder-replay") => disorder_replay(&args[1..]),
        Some("multi") => multi(&args[1..]),
        Some("multi-replay") => multi_replay(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn sweep(args: &[String]) -> i32 {
    let mut cases = 100u64;
    let mut master = 1u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{USAGE}");
            return 2;
        };
        let Ok(parsed) = value.parse::<u64>() else {
            eprintln!("invalid number for {flag}: {value}\n{USAGE}");
            return 2;
        };
        match flag.as_str() {
            "--cases" => cases = parsed,
            "--seed" => master = parsed,
            _ => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return 2;
            }
        }
    }
    silence_panics();
    let mut arrivals_total = 0usize;
    for i in 0..cases {
        let seed = case_seed(master, i);
        let case = generate_case(seed);
        arrivals_total += case.arrivals.len();
        if let Err(failure) = run_case(&case) {
            report(&case, &failure);
            return 1;
        }
        if (i + 1) % 25 == 0 {
            eprintln!("  … {}/{cases} cases clean", i + 1);
        }
    }
    println!(
        "audit sweep: {cases} cases ({arrivals_total} arrivals) — all policies match the \
         exact oracle at 100% memory (single-engine and sharded), all shed runs are \
         sub-multisets, sharded runs honour the partitioning contract, score-cache \
         on/off A/B runs are bit-identical on every odd-seed case, zero invariant \
         violations"
    );
    0
}

fn replay(args: &[String]) -> i32 {
    let Some(Ok(seed)) = args.first().map(|s| s.parse::<u64>()) else {
        eprintln!("{USAGE}");
        return 2;
    };
    silence_panics();
    let case = generate_case(seed);
    match run_case(&case) {
        Ok(()) => {
            println!("seed {seed}: PASS ({} arrivals)", case.arrivals.len());
            0
        }
        Err(failure) => {
            report(&case, &failure);
            1
        }
    }
}

fn disorder(args: &[String]) -> i32 {
    let mut cases = 100u64;
    let mut master = 1u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{USAGE}");
            return 2;
        };
        let Ok(parsed) = value.parse::<u64>() else {
            eprintln!("invalid number for {flag}: {value}\n{USAGE}");
            return 2;
        };
        match flag.as_str() {
            "--cases" => cases = parsed,
            "--seed" => master = parsed,
            _ => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return 2;
            }
        }
    }
    silence_panics();
    let mut arrivals_total = 0usize;
    for i in 0..cases {
        let seed = case_seed(master, i);
        let case = generate_case(seed);
        arrivals_total += case.arrivals.len();
        if let Err(failure) = run_disorder_case(&case) {
            report_disorder(&case, &failure);
            return 1;
        }
        if (i + 1) % 25 == 0 {
            eprintln!("  … {}/{cases} disorder cases clean", i + 1);
        }
    }
    println!(
        "disorder audit: {cases} cases ({arrivals_total} arrivals) — K=0 runs are \
         bit-identical to the trusting engine, covered disorder reproduces the in-order \
         output for every policy (single-engine and sharded, S ∈ {{1, 2, 4}}), \
         beyond-bound lateness is dropped, counted, and never joined, and event-time \
         score-cache A/B runs are bit-identical on every odd-seed case"
    );
    0
}

fn disorder_replay(args: &[String]) -> i32 {
    let Some(Ok(seed)) = args.first().map(|s| s.parse::<u64>()) else {
        eprintln!("{USAGE}");
        return 2;
    };
    silence_panics();
    let case = generate_case(seed);
    match run_disorder_case(&case) {
        Ok(()) => {
            println!("seed {seed}: PASS ({} arrivals)", case.arrivals.len());
            0
        }
        Err(failure) => {
            report_disorder(&case, &failure);
            1
        }
    }
}

fn multi(args: &[String]) -> i32 {
    let mut cases = 100u64;
    let mut master = 1u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{USAGE}");
            return 2;
        };
        let Ok(parsed) = value.parse::<u64>() else {
            eprintln!("invalid number for {flag}: {value}\n{USAGE}");
            return 2;
        };
        match flag.as_str() {
            "--cases" => cases = parsed,
            "--seed" => master = parsed,
            _ => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return 2;
            }
        }
    }
    silence_panics();
    let mut arrivals_total = 0usize;
    let mut queries_total = 0usize;
    for i in 0..cases {
        let seed = case_seed(master, i);
        let case = generate_multi_case(seed);
        arrivals_total += case.arrivals.len();
        queries_total += case.queries.len();
        if let Err(failure) = run_multi_case(&case) {
            report_multi(&case, &failure);
            return 1;
        }
        if (i + 1) % 25 == 0 {
            eprintln!("  … {}/{cases} multi-query cases clean", i + 1);
        }
    }
    println!(
        "multi-query audit: {cases} cases ({queries_total} standing queries, \
         {arrivals_total} arrivals) — every query's shared-plane output matches its solo \
         exact oracle at 100% memory for every policy (in-process and sharded S ∈ {{1, 2}}), \
         every shed run is a per-query sub-multiset, keyed sets run at full width, \
         score-cache on/off A/B runs are bit-identical on every odd-seed case, zero \
         invariant violations"
    );
    0
}

fn multi_replay(args: &[String]) -> i32 {
    let Some(Ok(seed)) = args.first().map(|s| s.parse::<u64>()) else {
        eprintln!("{USAGE}");
        return 2;
    };
    silence_panics();
    let case = generate_multi_case(seed);
    match run_multi_case(&case) {
        Ok(()) => {
            println!(
                "seed {seed}: PASS ({} queries, {} arrivals)",
                case.queries.len(),
                case.arrivals.len()
            );
            0
        }
        Err(failure) => {
            report_multi(&case, &failure);
            1
        }
    }
}

/// Invariant violations unwind as panics dozens of times during a shrink;
/// the quiet hook suppresses the backtrace spray while recording each
/// panic's message and location for the report.
fn silence_panics() {
    install_quiet_hook();
}

fn report(case: &Case, failure: &Failure) {
    eprintln!("AUDIT FAILURE");
    eprintln!("  seed:    {}", case.seed);
    eprintln!("  query:   {}", describe(case));
    eprintln!("  failure: {failure}");
    eprintln!("  replay:  cargo run -p mstream-audit -- replay {}", case.seed);
    eprintln!(
        "  shrinking {} arrivals (greedy, may take a moment)…",
        case.arrivals.len()
    );
    let minimal = shrink_case(case);
    eprintln!("  minimal failing trace ({} arrivals):", minimal.len());
    for (i, a) in minimal.iter().enumerate() {
        eprintln!("    {}", describe_arrival(i, a));
    }
}

/// Disorder failures are reported without the shrink pass: the shrinker
/// minimises against the exactness differential, which a disorder-contract
/// violation generally does not trip.
fn report_disorder(case: &Case, failure: &Failure) {
    eprintln!("DISORDER AUDIT FAILURE");
    eprintln!("  seed:    {}", case.seed);
    eprintln!("  query:   {}", describe(case));
    eprintln!("  failure: {failure}");
    eprintln!(
        "  replay:  cargo run -p mstream-audit -- disorder-replay {}",
        case.seed
    );
}

/// Multi-query failures are reported without the shrink pass (the shrinker
/// minimises solo cases against the single-engine differential).
fn report_multi(case: &MultiCase, failure: &Failure) {
    eprintln!("MULTI-QUERY AUDIT FAILURE");
    eprintln!("  seed:    {}", case.seed);
    eprintln!("  set:     {}", describe_multi(case));
    eprintln!("  failure: {failure}");
    eprintln!(
        "  replay:  cargo run -p mstream-audit -- multi-replay {}",
        case.seed
    );
}

fn describe_multi(case: &MultiCase) -> String {
    let queries: Vec<String> = case
        .queries
        .iter()
        .zip(&case.kinds)
        .map(|(q, kind)| {
            let streams: Vec<&str> = q
                .catalog()
                .iter()
                .map(|(_, s)| s.name.as_str())
                .collect();
            format!("{kind:?}({})", streams.join(","))
        })
        .collect();
    format!(
        "{} queries [{}], epoch {:?}, cap {}/window, keyed {}, {} arrivals",
        case.queries.len(),
        queries.join(" "),
        case.epoch,
        case.capacity,
        case.keyed,
        case.arrivals.len()
    )
}

fn describe(case: &Case) -> String {
    let windows: Vec<String> = (0..case.n_streams())
        .map(|k| format!("{:?}", case.query.window(StreamId(k))))
        .collect();
    let memory = match &case.reduced {
        ReducedMemory::PerWindow(c) => format!("cap {c}/window"),
        ReducedMemory::PerWindowEach(cs) => format!("caps {cs:?}"),
        ReducedMemory::GlobalPool(total) => format!("pool {total}"),
    };
    format!(
        "{} streams, {} predicates, windows [{}], epoch {:?}, reduced {}, {} shards ({:?})",
        case.n_streams(),
        case.query.predicates().len(),
        windows.join(", "),
        case.epoch,
        memory,
        case.shards,
        case.query.partitioning(),
    )
}

fn describe_arrival(i: usize, a: &Arrival) -> String {
    format!(
        "#{i}: stream {} values {:?} at {}µs",
        a.stream, a.values, a.at_micros
    )
}
