//! The concrete policies compared in the paper's evaluation (§5).

use crate::context::{PriorityCtx, Requirements};
use mstream_types::Tuple;
use mstream_window::QueueVictim;
use rand::Rng;

/// Largest magnitude a policy score may take.
///
/// The priority heap (`mstream-window`) asserts finiteness, so every score
/// must be clamped into this range before it reaches a priority queue.
pub const MAX_SCORE: f64 = 1e300;

/// Maps a raw policy score onto the finite range the priority heaps accept.
///
/// AGMS estimates are unbounded sums of signed products, so a pathological
/// input can push a productivity estimate to `±∞`, and lifetime-weighted
/// measures can then produce `0 × ∞ = NaN`. Either would trip the
/// finiteness assert in the window heap and panic the engine mid-run. NaN
/// collapses to `0` (an estimate that carries no information protects
/// nothing); infinities saturate at `±`[`MAX_SCORE`].
pub fn clamp_score(score: f64) -> f64 {
    if score.is_nan() {
        0.0
    } else {
        score.clamp(-MAX_SCORE, MAX_SCORE)
    }
}

/// A load-shedding policy: a priority score per tuple.
///
/// Higher scores survive; the engine evicts the minimum when a window or
/// the queue is full. Scores must be finite.
pub trait ShedPolicy: Send {
    /// Short display name (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// A fresh boxed copy of this policy. Sharded execution gives every
    /// worker its own instance, so policies carrying mutable state must
    /// copy it (the built-ins are all stateless unit structs).
    fn clone_box(&self) -> Box<dyn ShedPolicy>;

    /// What engine-maintained state this policy consumes.
    fn requirements(&self) -> Requirements;

    /// Priority of `tuple` as a *window* resident. `produced` is the number
    /// of join results attributed to the tuple so far (0 on arrival); only
    /// policies that declared `produced_counters` see non-zero values.
    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, produced: u64)
        -> f64;

    /// Window priority plus opaque per-tuple state the engine caches so the
    /// priority can be refreshed cheaply as the tuple's produced-output
    /// counter grows ([`ShedPolicy::refresh_priority`]) without touching
    /// the estimation state again — the paper's "productivity computed at
    /// most twice per lifetime" discipline. Policies without
    /// produced-counters just return state 0.
    fn window_priority_with_state(
        &mut self,
        ctx: &mut PriorityCtx<'_>,
        tuple: &Tuple,
        produced: u64,
    ) -> (f64, f64) {
        (self.window_priority(ctx, tuple, produced), 0.0)
    }

    /// Recomputes the priority from cached `state` after the tuple's
    /// produced-output counter changed. Only called for policies that
    /// declare `Requirements::produced_counters`.
    fn refresh_priority(&self, state: f64, produced: u64) -> f64 {
        let _ = (state, produced);
        unreachable!("policy did not declare Requirements::produced_counters")
    }

    /// Whether this policy's window priority factors into a **shareable
    /// estimate** ([`ShedPolicy::window_estimate`]) recombined per tuple by
    /// [`ShedPolicy::window_priority_from_estimate`]. Declaring `true` is a
    /// contract with two clauses the engine exploits at epoch rollovers
    /// (DESIGN.md §16):
    ///
    /// 1. `window_priority_from_estimate(ctx, t, p, window_estimate(ctx, t))`
    ///    returns bit-identically what `window_priority_with_state(ctx, t, p)`
    ///    would, and
    /// 2. `window_estimate` depends on the tuple only through the values of
    ///    its stream's indexed join attributes — tuples agreeing on those
    ///    values share one estimate, so the rollover rebuild computes it
    ///    once per distinct key and fans it out to every resident slot.
    ///
    /// Defaults to `false`: undeclared (e.g. third-party) policies are
    /// rescored per slot exactly as before — they still inherit the
    /// estimate memo underneath [`PriorityCtx::productivity`], just not
    /// the grouped walk.
    fn groupable_estimate(&self) -> bool {
        false
    }

    /// The shareable component of the window priority (see
    /// [`ShedPolicy::groupable_estimate`]). Defaults to the clamped
    /// sketch-estimated productivity — the partner-side quantity every
    /// built-in sketch policy prices tuples with.
    fn window_estimate(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple) -> f64 {
        ctx.productivity(tuple)
    }

    /// Recombines a previously computed `estimate` with the tuple's
    /// per-slot inputs (produced count, lifetime, …) into
    /// `(priority, policy state)`. The default delegates to the full
    /// scoring path — correct for any policy, just without the saving —
    /// so only policies that declare [`ShedPolicy::groupable_estimate`]
    /// need to override it.
    fn window_priority_from_estimate(
        &mut self,
        ctx: &mut PriorityCtx<'_>,
        tuple: &Tuple,
        produced: u64,
        estimate: f64,
    ) -> (f64, f64) {
        let _ = estimate;
        self.window_priority_with_state(ctx, tuple, produced)
    }

    /// Priority of `tuple` as a *queue* resident. Defaults to the window
    /// priority with `produced = 0` (a queued tuple has produced nothing).
    fn queue_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple) -> f64 {
        self.window_priority(ctx, tuple, 0)
    }

    /// How a full queue chooses its victim.
    fn queue_victim(&self) -> QueueVictim {
        QueueVictim::MinPriority
    }
}

impl Clone for Box<dyn ShedPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// `MSketch` (paper §3.2, Max-Subset): evict the tuple with least
/// sketch-estimated productivity `|T_{W_i={t}}|`, maximizing the output
/// size of the approximate join.
#[derive(Clone, Copy, Debug, Default)]
pub struct MSketch;

impl ShedPolicy for MSketch {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "MSketch"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            sketches: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        ctx.productivity(tuple)
    }

    fn groupable_estimate(&self) -> bool {
        true
    }

    fn window_priority_from_estimate(
        &mut self,
        _ctx: &mut PriorityCtx<'_>,
        _tuple: &Tuple,
        _produced: u64,
        estimate: f64,
    ) -> (f64, f64) {
        // The priority IS the shared estimate.
        (estimate, 0.0)
    }
}

/// `MSketch-RS` (paper §3.2, Random Sampling): evict the tuple that has
/// already produced the largest *fraction* of its expected output
/// `(n−1)·prod(t)`, equalizing per-tuple output fractions so the emitted
/// result is a statistically accurate uniform sample of the true join.
/// Queued tuples all carry priority 1 and the queue sheds uniformly at
/// random.
#[derive(Clone, Copy, Debug, Default)]
pub struct MSketchRs;

impl ShedPolicy for MSketchRs {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "MSketch-RS"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            sketches: true,
            produced_counters: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, produced: u64) -> f64 {
        self.window_priority_with_state(ctx, tuple, produced).0
    }

    fn window_priority_with_state(
        &mut self,
        ctx: &mut PriorityCtx<'_>,
        tuple: &Tuple,
        produced: u64,
    ) -> (f64, f64) {
        let estimate = ctx.productivity(tuple);
        self.window_priority_from_estimate(ctx, tuple, produced, estimate)
    }

    fn groupable_estimate(&self) -> bool {
        true
    }

    /// Recombine: scale the shared estimate to the expected output
    /// `(n−1)·prod(t)`, then apply the per-tuple produced count. This is
    /// the cacheable-estimate / cheap-combiner split — a credit refresh or
    /// a grouped rebuild reprices the tuple without re-estimating.
    fn window_priority_from_estimate(
        &mut self,
        ctx: &mut PriorityCtx<'_>,
        _tuple: &Tuple,
        produced: u64,
        estimate: f64,
    ) -> (f64, f64) {
        let expected = (ctx.n_streams() as f64 - 1.0) * estimate;
        (self.refresh_priority(expected, produced), expected)
    }

    /// Fraction of the cached expected output still to come. A tuple whose
    /// expectation is (near-)zero has nothing left to contribute to the
    /// sample — its remaining fraction is zero, so it is shed before any
    /// tuple that still owes output (otherwise dead tuples would be
    /// immortal at priority 1 and crowd every producer out of memory).
    /// Over-producers go further negative. Clamps keep scores finite.
    ///
    /// AGMS estimates can be zero or negative; a NaN expectation lands in
    /// the dead-tuple branch explicitly, so the division below only ever
    /// sees a denominator above the `EPSILON` floor (a saturated `+∞`
    /// expectation divides to 0 and scores the full fraction, which is the
    /// conservative direction).
    fn refresh_priority(&self, expected: f64, produced: u64) -> f64 {
        if expected.is_nan() || expected <= f64::EPSILON {
            if produced == 0 {
                0.0
            } else {
                clamp_score(-(produced as f64) * 1e6)
            }
        } else {
            (1.0 - produced as f64 / expected).max(-1e12)
        }
    }

    fn queue_priority(&mut self, _ctx: &mut PriorityCtx<'_>, _tuple: &Tuple) -> f64 {
        1.0
    }

    fn queue_victim(&self) -> QueueVictim {
        QueueVictim::Random
    }
}

/// `Age` (paper §5): priority = remaining lifetime × productivity. The
/// paper includes it to show that remaining lifetime is *not* a useful
/// factor (it raises a tuple's future gain and its storage cost at the
/// same rate), and finds it performs like `Random`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Age;

impl ShedPolicy for Age {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "Age"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            sketches: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        let life = ctx.remaining_lifetime_secs(tuple);
        life * ctx.productivity(tuple)
    }

    fn groupable_estimate(&self) -> bool {
        true
    }

    /// Recombine: the per-tuple remaining lifetime scales the shared
    /// productivity estimate (same factor order as the full path).
    fn window_priority_from_estimate(
        &mut self,
        ctx: &mut PriorityCtx<'_>,
        tuple: &Tuple,
        _produced: u64,
        estimate: f64,
    ) -> (f64, f64) {
        (ctx.remaining_lifetime_secs(tuple) * estimate, 0.0)
    }
}

/// `Life` (Das et al., SIGMOD'03): partner frequency × remaining lifetime,
/// the binary-join heuristic the paper cites as related work. Included as
/// an additional baseline (see DESIGN.md §7).
#[derive(Clone, Copy, Debug, Default)]
pub struct Life;

impl ShedPolicy for Life {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "Life"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            partner_freq: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        ctx.remaining_lifetime_secs(tuple) * ctx.binary_tree_frequency(tuple)
    }
}

/// `Bjoin` (paper §1/§5): the multi-binary-join baseline — Das et al.'s
/// `Prob` applied to a left-deep binary decomposition such as
/// `(R1 ⋈ R2) ⋈ R3`. Each window's priority is the partner frequency of
/// its tuple's join value on its designated pair only; the content of
/// every stream outside that pair is disregarded, which is exactly the
/// deficiency the paper demonstrates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bjoin;

impl ShedPolicy for Bjoin {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "Bjoin"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            partner_freq: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        ctx.binary_tree_frequency(tuple)
    }
}

/// `Random` (paper §5): evict uniformly at random — every tuple draws a
/// uniform score at arrival.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomLoad;

impl ShedPolicy for RandomLoad {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "Random"
    }

    fn requirements(&self) -> Requirements {
        Requirements::default()
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, _tuple: &Tuple, _produced: u64) -> f64 {
        ctx.rng.gen::<f64>()
    }

    fn queue_victim(&self) -> QueueVictim {
        QueueVictim::Random
    }
}

/// `FIFO` (paper §5): drop the oldest tuple — the score is the arrival
/// sequence number.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl ShedPolicy for Fifo {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn requirements(&self) -> Requirements {
        Requirements::default()
    }

    fn window_priority(&mut self, _ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        tuple.seq.0 as f64
    }

    fn queue_victim(&self) -> QueueVictim {
        QueueVictim::Oldest
    }
}

/// Ablation variant of [`MSketch`] that scores against the *current*
/// (still-accumulating) epoch's sketches instead of the last completed
/// tumbling window. More reactive to the newest distribution but
/// systematically under-estimates early in each epoch (the sketch has seen
/// few tuples); the paper's design choice of last-epoch scoring is
/// validated by benchmarking this variant against it.
#[derive(Clone, Copy, Debug, Default)]
pub struct MSketchCurrentEpoch;

impl ShedPolicy for MSketchCurrentEpoch {
    fn clone_box(&self) -> Box<dyn ShedPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "MSketch-Current"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            sketches: true,
            recompute_on_epoch: true,
            ..Default::default()
        }
    }

    fn window_priority(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple, _produced: u64) -> f64 {
        ctx.current_productivity(tuple)
    }

    fn groupable_estimate(&self) -> bool {
        // The live bank does not change *during* a rebuild pass, so equal
        // join-key values still share one current-epoch estimate there —
        // the estimate is simply never memoized across arrivals.
        true
    }

    fn window_estimate(&mut self, ctx: &mut PriorityCtx<'_>, tuple: &Tuple) -> f64 {
        ctx.current_productivity(tuple)
    }

    fn window_priority_from_estimate(
        &mut self,
        _ctx: &mut PriorityCtx<'_>,
        _tuple: &Tuple,
        _produced: u64,
        estimate: f64,
    ) -> (f64, f64) {
        (estimate, 0.0)
    }
}

/// All built-in policy names, in the paper's reporting order.
pub const ALL_POLICY_NAMES: &[&str] = &[
    "MSketch",
    "MSketch-RS",
    "Age",
    "Life",
    "Bjoin",
    "Random",
    "FIFO",
];

/// Instantiates a built-in policy by (case-insensitive) name.
pub fn parse_policy(name: &str) -> Option<Box<dyn ShedPolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "msketch" => Some(Box::new(MSketch)),
        "msketch-current" | "msketchcurrent" => Some(Box::new(MSketchCurrentEpoch)),
        "msketch-rs" | "msketchrs" | "rs" => Some(Box::new(MSketchRs)),
        "age" => Some(Box::new(Age)),
        "life" => Some(Box::new(Life)),
        "bjoin" => Some(Box::new(Bjoin)),
        "random" => Some(Box::new(RandomLoad)),
        "fifo" => Some(Box::new(Fifo)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_sketch::{BankConfig, EpochSpec, TumblingFreq, TumblingSketches};
    use mstream_types::{
        Catalog, JoinQuery, SeqNo, StreamId, StreamSchema, VDur, VTime, Value, WindowSpec,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain3() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(100),
        )
        .unwrap()
    }

    fn tup(stream: usize, seq: u64, ts: u64, a: u64, b: u64) -> Tuple {
        Tuple::new(
            StreamId(stream),
            VTime::from_secs(ts),
            SeqNo(seq),
            vec![Value(a), Value(b)],
        )
    }

    /// Builds sketches where R2 holds 20 copies of (9, 3) and R3 holds 10
    /// tuples with A1=3 — so an R1 tuple with A1=9 has productivity ~200.
    fn hot_sketches(q: &JoinQuery) -> TumblingSketches {
        let mut sk = TumblingSketches::new(
            q,
            BankConfig {
                s1: 300,
                s2: 1,
                seed: 9,
            },
            EpochSpec::Time(VDur::from_secs(1000)),
        );
        for _ in 0..20 {
            sk.observe(StreamId(1), &[Value(9), Value(3)], VTime::ZERO);
        }
        for i in 0..10 {
            sk.observe(StreamId(2), &[Value(3), Value(i)], VTime::ZERO);
        }
        sk
    }

    fn ctx<'a>(
        q: &'a JoinQuery,
        sk: Option<&'a mut TumblingSketches>,
        pf: Option<&'a TumblingFreq>,
        now: u64,
        rng: &'a mut StdRng,
    ) -> PriorityCtx<'a> {
        PriorityCtx {
            query: q,
            sketches: sk,
            partner_freq: pf,
            now: VTime::from_secs(now),
            rng,
            event_time: false,
        }
    }

    #[test]
    fn msketch_prefers_productive_tuples() {
        let q = chain3();
        let mut sk = hot_sketches(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = MSketch;
        let mut c = ctx(&q, Some(&mut sk), None, 0, &mut rng);
        let hot = p.window_priority(&mut c, &tup(0, 0, 0, 9, 0), 0);
        let cold = p.window_priority(&mut c, &tup(0, 1, 0, 1, 0), 0);
        assert!(hot > cold + 50.0, "hot={hot} cold={cold}");
        assert!(cold >= 0.0, "clamped at zero");
    }

    #[test]
    fn msketch_queue_score_equals_window_score() {
        let q = chain3();
        let mut sk = hot_sketches(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = MSketch;
        let t = tup(0, 0, 0, 9, 0);
        let w = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 0);
        let qp = p.queue_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t);
        assert_eq!(w, qp);
        assert_eq!(p.queue_victim(), QueueVictim::MinPriority);
    }

    #[test]
    fn rs_priority_decreases_as_tuple_produces() {
        let q = chain3();
        let mut sk = hot_sketches(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = MSketchRs;
        let t = tup(0, 0, 0, 9, 0);
        let fresh = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 0);
        let half = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 200);
        let over = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 800);
        assert!(fresh > half && half > over, "{fresh} > {half} > {over}");
        assert!((fresh - 1.0).abs() < 0.2, "fresh tuple has ~full fraction left");
    }

    #[test]
    fn rs_gives_zero_expectation_tuples_no_protection() {
        let q = chain3();
        let mut sk = TumblingSketches::new(
            &q,
            BankConfig {
                s1: 4,
                s2: 1,
                seed: 0,
            },
            EpochSpec::Time(VDur::from_secs(1000)),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = MSketchRs;
        let t = tup(0, 0, 0, 1, 0);
        // Empty sketches: expectation 0.
        let idle = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 0);
        let over = p.window_priority(&mut ctx(&q, Some(&mut sk), None, 0, &mut rng), &t, 5);
        assert_eq!(idle, 0.0, "nothing left to contribute");
        assert!(over < -1e5);
    }

    #[test]
    fn negative_productivity_estimates_score_finite() {
        // With a single sketch copy the AGMS estimate is one signed
        // product, so roughly half of all values carry a *negative*
        // estimate — the raw quantity MSketch-RS would divide by. Find one
        // and check every policy that consumes productivity stays finite
        // and clamped.
        let q = chain3();
        let mut sk = TumblingSketches::new(
            &q,
            BankConfig {
                s1: 1,
                s2: 1,
                seed: 3,
            },
            EpochSpec::Time(VDur::from_secs(1000)),
        );
        for i in 0..8 {
            sk.observe(StreamId(1), &[Value(i), Value(i)], VTime::ZERO);
            sk.observe(StreamId(2), &[Value(i), Value(0)], VTime::ZERO);
        }
        let negative = (0..64)
            .find(|&a| sk.bank().productivity(StreamId(0), &[Value(a), Value(0)]) < 0.0)
            .expect("a single-copy sketch has negative estimates");
        let t = tup(0, 0, 0, negative, 0);
        let mut rng = StdRng::seed_from_u64(0);
        // The clamped context estimate is exactly zero.
        let mut c = ctx(&q, Some(&mut sk), None, 0, &mut rng);
        assert_eq!(c.productivity(&t), 0.0);
        // MSketch / Age: zero, not negative or NaN.
        assert_eq!(MSketch.window_priority(&mut c, &t, 0), 0.0);
        assert_eq!(Age.window_priority(&mut c, &t, 0), 0.0);
        // MSketch-RS: the expected-output denominator is <= 0, so the
        // remaining-fraction division must not run; the dead-tuple branch
        // yields finite scores for any produced count.
        let mut p = MSketchRs;
        for produced in [0, 1, 10, u64::MAX] {
            let (score, state) = p.window_priority_with_state(&mut c, &t, produced);
            assert!(score.is_finite(), "produced={produced} score={score}");
            assert!(state.is_finite());
            assert!(p.refresh_priority(state, produced).is_finite());
        }
        assert_eq!(p.window_priority(&mut c, &t, 0), 0.0);
        assert!(p.window_priority(&mut c, &t, 3) < 0.0, "over-producer sheds first");
    }

    #[test]
    fn late_tuple_against_empty_frozen_epoch_scores_finite() {
        // The epoch-lookup path (event-time engines): a late tuple whose
        // timestamp targets a frozen epoch with all-zero counters gets a
        // productivity estimate of exactly 0. MSketch-RS divides produced
        // output by that expectation — without the EPSILON denominator
        // floor this would be 0/0 = NaN straight into a priority heap.
        let q = chain3();
        let mut sk = TumblingSketches::new(
            &q,
            BankConfig {
                s1: 4,
                s2: 1,
                seed: 5,
            },
            EpochSpec::Time(VDur::from_secs(10)),
        );
        // One populated first epoch, then a jump across several empty
        // epochs: both frozen snapshots end up all-zero.
        sk.observe(StreamId(1), &[Value(3), Value(3)], VTime::ZERO);
        sk.observe(StreamId(2), &[Value(3), Value(0)], VTime::ZERO);
        sk.observe(StreamId(1), &[Value(0), Value(0)], VTime::from_secs(55));
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = PriorityCtx {
            query: &q,
            sketches: Some(&mut sk),
            partner_freq: None,
            now: VTime::from_secs(55),
            rng: &mut rng,
            event_time: true,
        };
        // Late tuple: stamped two epochs back, well before the current
        // epoch's start at t=50.
        let late = tup(0, 0, 42, 3, 0);
        assert_eq!(c.productivity(&late), 0.0, "empty frozen epoch estimates 0");
        assert_eq!(MSketch.window_priority(&mut c, &late, 0), 0.0);
        let age = Age.window_priority(&mut c, &late, 0);
        assert!(age.is_finite() && age >= 0.0, "age={age}");
        let mut p = MSketchRs;
        for produced in [0, 1, 10, u64::MAX] {
            let (score, state) = p.window_priority_with_state(&mut c, &late, produced);
            assert!(score.is_finite(), "produced={produced} score={score}");
            assert!(state.is_finite());
            assert!(p.refresh_priority(state, produced).is_finite());
        }
        assert_eq!(
            p.window_priority(&mut c, &late, 0),
            0.0,
            "late dead tuple gets no protection, not a NaN priority"
        );
        assert!(p.window_priority(&mut c, &late, 3) < 0.0);
    }

    #[test]
    fn clamp_score_maps_every_float_into_heap_range() {
        assert_eq!(clamp_score(f64::NAN), 0.0);
        assert_eq!(clamp_score(f64::INFINITY), MAX_SCORE);
        assert_eq!(clamp_score(f64::NEG_INFINITY), -MAX_SCORE);
        assert_eq!(clamp_score(42.5), 42.5);
        assert_eq!(clamp_score(-0.0), -0.0);
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MAX, 1e307] {
            assert!(clamp_score(v).is_finite());
        }
        // NaN expectations (estimator misuse) take the dead-tuple branch.
        let p = MSketchRs;
        assert_eq!(p.refresh_priority(f64::NAN, 0), 0.0);
        assert!(p.refresh_priority(f64::NAN, 7).is_finite());
        assert_eq!(p.refresh_priority(f64::INFINITY, 123), 1.0);
    }

    #[test]
    fn rs_queue_is_uniform() {
        let q = chain3();
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = MSketchRs;
        let mut c = ctx(&q, None, None, 0, &mut rng);
        assert_eq!(p.queue_priority(&mut c, &tup(0, 0, 0, 9, 0)), 1.0);
        assert_eq!(p.queue_victim(), QueueVictim::Random);
    }

    #[test]
    fn age_scales_productivity_by_lifetime() {
        let q = chain3();
        let mut sk = hot_sketches(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Age;
        // Same value, one tuple much older (arrived t=0, now t=80 -> 20s
        // left) than the other (arrived t=80 -> 100s left).
        let old = p.window_priority(
            &mut ctx(&q, Some(&mut sk), None, 80, &mut rng),
            &tup(0, 0, 0, 9, 0),
            0,
        );
        let young = p.window_priority(
            &mut ctx(&q, Some(&mut sk), None, 80, &mut rng),
            &tup(0, 1, 80, 9, 0),
            0,
        );
        assert!(young > 4.0 * old, "young={young} old={old}");
    }

    /// Arrival-frequency tables (first epoch, falls back to current): R2
    /// has seen two (7, 4) arrivals and one (9, 4); R3 has seen one (4, 0).
    fn demo_freq(q: &JoinQuery) -> TumblingFreq {
        let mut pf = TumblingFreq::new(q, EpochSpec::Time(VDur::from_secs(1000)));
        pf.observe(StreamId(1), &[Value(7), Value(4)], VTime::ZERO);
        pf.observe(StreamId(1), &[Value(7), Value(4)], VTime::ZERO);
        pf.observe(StreamId(1), &[Value(9), Value(4)], VTime::ZERO);
        pf.observe(StreamId(2), &[Value(4), Value(0)], VTime::ZERO);
        pf
    }

    #[test]
    fn bjoin_uses_its_designated_pair_only() {
        let q = chain3();
        let pf = demo_freq(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Bjoin;
        let mut c = ctx(&q, None, Some(&pf), 0, &mut rng);
        // R1 consults the R2 pair: two A1=7 arrivals.
        assert_eq!(p.window_priority(&mut c, &tup(0, 0, 0, 7, 0), 0), 2.0);
        // R2 consults ONLY its first pair (R1, empty): score 0 even though
        // its A2=4 has an R3 partner — the blindness the paper criticizes.
        assert_eq!(p.window_priority(&mut c, &tup(1, 1, 0, 7, 4), 0), 0.0);
        // R3 consults the R2 pair on A2: one arrival with A2=4... in fact
        // all three R2 arrivals carry A2=4.
        assert_eq!(p.window_priority(&mut c, &tup(2, 2, 0, 4, 0), 0), 3.0);
    }

    #[test]
    fn life_multiplies_frequency_and_lifetime() {
        let q = chain3();
        let pf = demo_freq(&q);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Life;
        let score = p.window_priority(
            &mut ctx(&q, None, Some(&pf), 50, &mut rng),
            &tup(0, 0, 0, 7, 0),
            0,
        );
        // 2 partner arrivals × 50s remaining lifetime.
        assert_eq!(score, 100.0);
    }

    #[test]
    fn random_draws_differ_and_need_nothing() {
        let q = chain3();
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = RandomLoad;
        assert_eq!(p.requirements(), Requirements::default());
        let mut c = ctx(&q, None, None, 0, &mut rng);
        let t = tup(0, 0, 0, 1, 1);
        let a = p.window_priority(&mut c, &t, 0);
        let b = p.window_priority(&mut c, &t, 0);
        assert_ne!(a, b, "fresh draw per call");
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn fifo_orders_by_sequence() {
        let q = chain3();
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Fifo;
        let mut c = ctx(&q, None, None, 0, &mut rng);
        let older = p.window_priority(&mut c, &tup(0, 3, 0, 1, 1), 0);
        let newer = p.window_priority(&mut c, &tup(0, 9, 0, 1, 1), 0);
        assert!(older < newer, "oldest evicted first");
        assert_eq!(p.queue_victim(), QueueVictim::Oldest);
    }

    #[test]
    fn parse_policy_round_trips_all_names() {
        for name in ALL_POLICY_NAMES {
            let p = parse_policy(name).unwrap_or_else(|| panic!("{name} should parse"));
            assert_eq!(&p.name(), name);
        }
        assert!(parse_policy("nope").is_none());
        assert_eq!(parse_policy("rs").unwrap().name(), "MSketch-RS");
    }

    #[test]
    fn estimate_split_recombines_bit_identically() {
        // The groupable-estimate contract (clause 1): for every policy
        // declaring the split, recombining window_estimate through
        // window_priority_from_estimate must reproduce the full scoring
        // path bit for bit — this is what lets the rollover rebuild share
        // one estimate across every slot of a join key.
        let q = chain3();
        let policies: Vec<Box<dyn ShedPolicy>> = vec![
            Box::new(MSketch),
            Box::new(MSketchRs),
            Box::new(Age),
            Box::new(MSketchCurrentEpoch),
        ];
        for mut p in policies {
            assert!(p.groupable_estimate(), "{} declares the split", p.name());
            for produced in [0u64, 200, 800] {
                for (a, b) in [(9, 0), (1, 0), (3, 3)] {
                    let t = tup(0, 0, 0, a, b);
                    let mut sk = hot_sketches(&q);
                    let mut rng = StdRng::seed_from_u64(0);
                    let full = p.window_priority_with_state(
                        &mut ctx(&q, Some(&mut sk), None, 80, &mut rng),
                        &t,
                        produced,
                    );
                    let mut sk2 = hot_sketches(&q);
                    let mut rng2 = StdRng::seed_from_u64(0);
                    let est =
                        p.window_estimate(&mut ctx(&q, Some(&mut sk2), None, 80, &mut rng2), &t);
                    let split = p.window_priority_from_estimate(
                        &mut ctx(&q, Some(&mut sk2), None, 80, &mut rng2),
                        &t,
                        produced,
                        est,
                    );
                    assert_eq!(
                        full.0.to_bits(),
                        split.0.to_bits(),
                        "{} score, produced={produced} value=({a},{b})",
                        p.name()
                    );
                    assert_eq!(
                        full.1.to_bits(),
                        split.1.to_bits(),
                        "{} state, produced={produced} value=({a},{b})",
                        p.name()
                    );
                }
            }
        }
        // The non-sketch built-ins keep the per-slot path.
        for p in [parse_policy("life").unwrap(), parse_policy("bjoin").unwrap()] {
            assert!(!p.groupable_estimate(), "{} stays per-slot", p.name());
        }
        assert!(!RandomLoad.groupable_estimate());
        assert!(!Fifo.groupable_estimate());
    }

    #[test]
    fn requirements_match_paper_costs() {
        // The sketch policies must NOT require exact frequency tables, and
        // the binary-join baselines must not require sketches — this is the
        // space-cost comparison of paper §4.
        assert!(MSketch.requirements().sketches);
        assert!(!MSketch.requirements().partner_freq);
        assert!(Bjoin.requirements().partner_freq);
        assert!(!Bjoin.requirements().sketches);
        assert!(MSketchRs.requirements().produced_counters);
        assert!(!MSketch.requirements().produced_counters);
    }
}
