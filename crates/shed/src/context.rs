//! The state handed to a policy when it scores a tuple.

use mstream_sketch::{SignCacheStats, TumblingFreq, TumblingSketches};
use mstream_types::{JoinQuery, StreamId, Tuple, VTime};
use rand::rngs::StdRng;

/// What a policy needs the engine to maintain on its behalf.
///
/// Keeping unneeded state costs time and memory (e.g. exact frequency
/// tables are exactly the overhead the paper's sketches avoid), so the
/// engine materializes only what the active policy declares.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Requirements {
    /// Maintain tumbling AGMS sketches (productivity estimation).
    pub sketches: bool,
    /// Maintain exact per-predicate partner-frequency tables.
    pub partner_freq: bool,
    /// Track per-tuple produced-output counters (and refresh priorities as
    /// they grow).
    pub produced_counters: bool,
    /// Rebuild all window priorities at tumbling-epoch rollovers.
    pub recompute_on_epoch: bool,
}

/// Estimation state lent to [`crate::ShedPolicy`] scoring calls.
///
/// `sketches` and `partner_freq` are `Option`s: they are only populated
/// when the policy's [`Requirements`] asked for them, and a policy that
/// touches state it did not declare panics loudly (a programming error,
/// caught by tests, not a data condition).
pub struct PriorityCtx<'a> {
    /// The query (for predicate incidence and window specs).
    pub query: &'a JoinQuery,
    /// Tumbling sketches, if required.
    pub sketches: Option<&'a mut TumblingSketches>,
    /// Tumbling partner-frequency tables, if required.
    pub partner_freq: Option<&'a TumblingFreq>,
    /// Current virtual time (for lifetime-based policies).
    pub now: VTime,
    /// The engine's seeded rng (for randomized policies).
    pub rng: &'a mut StdRng,
    /// Whether the engine runs with an event-time front end (a disorder
    /// bound is configured). When set, productivity queries target the
    /// tumbling-sketch epoch the tuple's *timestamp* belongs to — a late
    /// tuple is scored against the (frozen) snapshot that was in force
    /// during its epoch, not the current one (DESIGN.md §13). When clear,
    /// scoring keeps the legacy current-epoch discipline bit for bit.
    pub event_time: bool,
}

impl<'a> PriorityCtx<'a> {
    /// Sketch-estimated productivity of `tuple`, clamped at zero.
    ///
    /// AGMS estimates are signed and unbounded: zero/negative estimates
    /// clamp to 0, and non-finite estimates (overflowed products, NaN)
    /// clamp through [`crate::policies::clamp_score`] so lifetime-weighted
    /// policies can never derive a `0 × ∞ = NaN` heap priority from them.
    ///
    /// With [`PriorityCtx::event_time`] set, the query targets the epoch
    /// `tuple.ts` belongs to (a late tuple consults the frozen snapshot of
    /// its own era). The clamp applies to *both* paths: an epoch-lookup
    /// estimate from a frozen epoch with zero counters is exactly 0 after
    /// clamping, and policies that divide by the estimate floor the
    /// denominator at `f64::EPSILON` so a late dead tuple scores finite
    /// instead of `0/0`.
    ///
    /// # Panics
    /// Panics if the policy did not declare `sketches` in its requirements.
    pub fn productivity(&mut self, tuple: &Tuple) -> f64 {
        let event_time = self.event_time;
        let sketches = self
            .sketches
            .as_deref_mut()
            .expect("policy did not declare Requirements::sketches");
        let raw = if event_time {
            sketches.productivity_at(tuple.stream, &tuple.values, tuple.ts)
        } else {
            sketches.productivity(tuple.stream, &tuple.values)
        };
        crate::policies::clamp_score(raw).max(0.0)
    }

    /// Productivity of `tuple` against the *current* (still accumulating)
    /// epoch's sketches instead of the last completed epoch — the costly
    /// variant the paper rejects (§4: priorities would have to be
    /// recomputed on every arrival). Exposed for the epoch-discipline
    /// ablation.
    ///
    /// # Panics
    /// Panics if the policy did not declare `sketches`.
    pub fn current_productivity(&self, tuple: &Tuple) -> f64 {
        let sketches = self
            .sketches
            .as_deref()
            .expect("policy did not declare Requirements::sketches");
        crate::policies::clamp_score(sketches.current_productivity(tuple.stream, &tuple.values))
            .max(0.0)
    }

    /// Product over the predicates incident to `tuple.stream` of the
    /// partner window's frequency of the tuple's join value — the `Prob`
    /// pairwise measure.
    ///
    /// # Panics
    /// Panics if the policy did not declare `partner_freq`.
    pub fn partner_frequency(&self, tuple: &Tuple) -> f64 {
        let pf = self
            .partner_freq
            .expect("policy did not declare Requirements::partner_freq");
        let mut product = 1.0f64;
        for &(pred_idx, attr) in self.query.incident(tuple.stream) {
            let v = tuple.values[attr];
            product *= pf.partner_count(pred_idx, tuple.stream, v) as f64;
        }
        product
    }

    /// The partner-window frequency of `tuple`'s join value on its
    /// **designated binary-join-tree pair** — the lowest-index predicate
    /// incident to its stream, matching a left-deep decomposition such as
    /// `(R1 ⋈ R2) ⋈ R3`. This is the paper's `Bjoin` measure: the middle
    /// stream consults only its first pair and is blind to the rest of the
    /// multi-way join (exactly the deficiency the paper demonstrates).
    ///
    /// # Panics
    /// Panics if the policy did not declare `partner_freq`.
    pub fn binary_tree_frequency(&self, tuple: &Tuple) -> f64 {
        let pf = self
            .partner_freq
            .expect("policy did not declare Requirements::partner_freq");
        let &(pred_idx, attr) = self
            .query
            .incident(tuple.stream)
            .first()
            .expect("every stream of a connected join has a predicate");
        pf.partner_count(pred_idx, tuple.stream, tuple.values[attr]) as f64
    }

    /// Seconds of lifetime `tuple` has left in its window (time-based
    /// windows; tuple-based windows fall back to 1.0 since remaining
    /// lifetime is measured in arrivals the engine cannot foresee).
    pub fn remaining_lifetime_secs(&self, tuple: &Tuple) -> f64 {
        match self.query.window(tuple.stream) {
            mstream_types::WindowSpec::Time(p) => {
                let expiry = tuple.ts + p;
                expiry.since(self.now).as_secs_f64()
            }
            mstream_types::WindowSpec::Tuples(_) => 1.0,
        }
    }

    /// Hit/miss/occupancy counters of the sketch bank's packed-sign memo,
    /// when the policy runs with sketches (`None` otherwise). Lets policy
    /// diagnostics report how much of the productivity hot path is served
    /// from memoized sign vectors.
    pub fn sketch_cache_stats(&self) -> Option<SignCacheStats> {
        self.sketches.as_deref().map(|s| s.sign_cache_stats())
    }

    /// Number of streams in the query.
    pub fn n_streams(&self) -> usize {
        self.query.n_streams()
    }

    /// The stream of interest's window length `p` in seconds, if
    /// time-based.
    pub fn window_secs(&self, stream: StreamId) -> Option<f64> {
        match self.query.window(stream) {
            mstream_types::WindowSpec::Time(p) => Some(p.as_secs_f64()),
            mstream_types::WindowSpec::Tuples(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mstream_sketch::{BankConfig, EpochSpec};
    use mstream_types::{Catalog, SeqNo, StreamSchema, VDur, Value, WindowSpec};
    use rand::SeedableRng;

    fn chain3() -> JoinQuery {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
        c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
        JoinQuery::from_names(
            c,
            &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
            WindowSpec::secs(100),
        )
        .unwrap()
    }

    fn tup(stream: usize, ts: u64, a: u64, b: u64) -> Tuple {
        Tuple::new(
            StreamId(stream),
            VTime::from_secs(ts),
            SeqNo(0),
            vec![Value(a), Value(b)],
        )
    }

    #[test]
    fn remaining_lifetime_counts_down() {
        let q = chain3();
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: None,
            now: VTime::from_secs(30),
            rng: &mut rng,
            event_time: false,
        };
        // Arrived at t=10 with p=100: 80s left at t=30.
        assert_eq!(ctx.remaining_lifetime_secs(&tup(0, 10, 1, 1)), 80.0);
        // Already expired tuples saturate at 0.
        let ctx2 = PriorityCtx {
            now: VTime::from_secs(200),
            ..ctx
        };
        assert_eq!(ctx2.remaining_lifetime_secs(&tup(0, 10, 1, 1)), 0.0);
    }

    #[test]
    fn partner_frequency_multiplies_incident_predicates() {
        let q = chain3();
        let mut pf = TumblingFreq::new(&q, EpochSpec::Time(VDur::from_secs(1000)));
        // First epoch: the tables fall back to the live (current) counts.
        // R2 sees three arrivals with A1=7 and A2=4.
        for _ in 0..3 {
            pf.observe(StreamId(1), &[Value(7), Value(4)], VTime::ZERO);
        }
        // R3 sees two arrivals with A1=4; R1 sees one with A1=7.
        for _ in 0..2 {
            pf.observe(StreamId(2), &[Value(4), Value(0)], VTime::ZERO);
        }
        pf.observe(StreamId(0), &[Value(7), Value(9)], VTime::ZERO);
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: Some(&pf),
            now: VTime::ZERO,
            rng: &mut rng,
            event_time: false,
        };
        // R1 tuple with A1=7: 3 partner arrivals on R2.
        assert_eq!(ctx.partner_frequency(&tup(0, 0, 7, 0)), 3.0);
        assert_eq!(ctx.binary_tree_frequency(&tup(0, 0, 7, 0)), 3.0);
        // R2 tuple (7, 4): full product = 1 (R1) x 2 (R3) = 2, but the
        // binary-tree measure only consults its first pair (R1) = 1.
        assert_eq!(ctx.partner_frequency(&tup(1, 0, 7, 4)), 2.0);
        assert_eq!(ctx.binary_tree_frequency(&tup(1, 0, 7, 4)), 1.0);
        // R3 tuple with A1=9: no partner -> 0.
        assert_eq!(ctx.partner_frequency(&tup(2, 0, 9, 0)), 0.0);
    }

    #[test]
    fn partner_frequency_uses_last_epoch_after_rollover() {
        let q = chain3();
        let mut pf = TumblingFreq::new(&q, EpochSpec::Time(VDur::from_secs(10)));
        for _ in 0..4 {
            pf.observe(StreamId(1), &[Value(7), Value(4)], VTime::ZERO);
        }
        // Cross the epoch boundary; the new arrival lands in the fresh
        // current epoch.
        pf.observe(StreamId(1), &[Value(9), Value(9)], VTime::from_secs(11));
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: Some(&pf),
            now: VTime::from_secs(11),
            rng: &mut rng,
            event_time: false,
        };
        // R1 consults R2's LAST epoch: 4 sevens, zero nines.
        assert_eq!(ctx.binary_tree_frequency(&tup(0, 11, 7, 0)), 4.0);
        assert_eq!(ctx.binary_tree_frequency(&tup(0, 11, 9, 0)), 0.0);
    }

    #[test]
    fn productivity_clamps_negative_estimates() {
        let q = chain3();
        let mut sk = TumblingSketches::new(
            &q,
            BankConfig {
                s1: 2,
                s2: 1,
                seed: 1,
            },
            EpochSpec::Time(VDur::from_secs(100)),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = PriorityCtx {
            query: &q,
            sketches: Some(&mut sk),
            partner_freq: None,
            now: VTime::ZERO,
            rng: &mut rng,
            event_time: false,
        };
        // Empty sketches -> estimate 0, and never below.
        assert!(ctx.productivity(&tup(0, 0, 1, 1)) >= 0.0);
    }

    #[test]
    fn sketch_cache_stats_exposed_when_sketches_present() {
        let q = chain3();
        let mut sk = TumblingSketches::new(
            &q,
            BankConfig {
                s1: 4,
                s2: 1,
                seed: 2,
            },
            EpochSpec::Time(VDur::from_secs(100)),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = PriorityCtx {
            query: &q,
            sketches: Some(&mut sk),
            partner_freq: None,
            now: VTime::ZERO,
            rng: &mut rng,
            event_time: false,
        };
        assert_eq!(ctx.sketch_cache_stats().unwrap().misses, 0);
        let _ = ctx.productivity(&tup(0, 0, 1, 1));
        let _ = ctx.productivity(&tup(0, 0, 1, 1));
        let stats = ctx.sketch_cache_stats().unwrap();
        assert!(stats.misses >= 1, "first sign lookup evaluates");
        assert!(stats.hits >= 1, "repeated sign lookup memoized");
        let mut rng2 = StdRng::seed_from_u64(0);
        let ctx2 = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: None,
            now: VTime::ZERO,
            rng: &mut rng2,
            event_time: false,
        };
        assert!(ctx2.sketch_cache_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "did not declare")]
    fn undeclared_sketch_access_panics() {
        let q = chain3();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: None,
            now: VTime::ZERO,
            rng: &mut rng,
            event_time: false,
        };
        let _ = ctx.productivity(&tup(0, 0, 1, 1));
    }

    #[test]
    fn tuple_windows_report_unit_lifetime() {
        let mut c = Catalog::new();
        c.add_stream(StreamSchema::new("R1", &["A1"]));
        c.add_stream(StreamSchema::new("R2", &["A1"]));
        let q = JoinQuery::from_names(c, &[("R1.A1", "R2.A1")], WindowSpec::Tuples(10)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = PriorityCtx {
            query: &q,
            sketches: None,
            partner_freq: None,
            now: VTime::from_secs(5),
            rng: &mut rng,
            event_time: false,
        };
        let t = Tuple::new(StreamId(0), VTime::ZERO, SeqNo(0), vec![Value(1)]);
        assert_eq!(ctx.remaining_lifetime_secs(&t), 1.0);
        assert_eq!(ctx.window_secs(StreamId(0)), None);
    }
}
