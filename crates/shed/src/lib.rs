//! Load-shedding priority policies (paper §3 and §5).
//!
//! Every shedding decision in the paper's model — window eviction and queue
//! eviction — reduces to a **priority score** per tuple: when a buffer is
//! full, the resident with the least score is dismissed. The policies
//! differ only in how the score is computed:
//!
//! | Policy        | Window score of tuple `t` on `S_i`                      |
//! |---------------|---------------------------------------------------------|
//! | [`MSketch`]   | `max(prod(t), 0)` — sketch-estimated productivity       |
//! | [`MSketchRs`] | `1 − produced(t) / ((n−1)·prod(t))` — remaining fraction|
//! | [`Age`]       | remaining lifetime × `max(prod(t), 0)`                  |
//! | [`Life`]      | remaining lifetime × partner frequency (Das et al.)     |
//! | [`Bjoin`]     | Π partner-window frequency of `t`'s join values (Prob applied pairwise) |
//! | [`RandomLoad`]| uniform random draw                                     |
//! | [`Fifo`]      | arrival sequence number (drop-oldest)                   |
//!
//! The engine supplies a [`PriorityCtx`] carrying whichever state the
//! policy declares it needs ([`ShedPolicy::requirements`]): tumbling
//! sketches for productivity, exact partner-frequency tables for the
//! binary-join baselines, produced-so-far counters for random sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod policies;

pub use context::{PriorityCtx, Requirements};
pub use policies::{
    clamp_score, parse_policy, Age, Bjoin, Fifo, Life, MSketch, MSketchCurrentEpoch, MSketchRs,
    RandomLoad, ShedPolicy, ALL_POLICY_NAMES, MAX_SCORE,
};
