#!/usr/bin/env bash
# Runs the shard-scaling throughput pass (sharded engine at S in {1,2,4,8}
# on a key-partitionable query) and writes BENCH_shard.json at the repo
# root.
#
# Usage: scripts/bench_shard.sh [--scale S]
#
# Artifact layout (BENCH_shard.json):
#   {
#     "shard_scaling": [ {"shards": 1, "seconds": ..., "output": ...,
#                         "processed": ..., "shed_window": ...,
#                         "speedup": ...}, ... ]
#   }
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${2:-0.5}"
if [ "${1:-}" = "--scale" ] && [ -n "${2:-}" ]; then SCALE="$2"; fi

echo "== shard_scaling (scale $SCALE) =="
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --scale "$SCALE" --json target/shard_scaling.json

echo "== merging BENCH_shard.json =="
python3 - <<'EOF'
import json

with open("target/shard_scaling.json") as f:
    rows = json.load(f)

with open("BENCH_shard.json", "w") as f:
    json.dump({"shard_scaling": rows}, f, indent=2, sort_keys=True)
print(f"wrote BENCH_shard.json ({len(rows)} shard counts)")
EOF
