#!/usr/bin/env bash
# Runs the shard-scaling throughput passes and merges BENCH_shard.json at
# the repo root:
#   - uniform: the regions trace at S in {1,2,4,8} (DESIGN.md §11 row;
#     wall-time speedup is the headline)
#   - zipf:    a Zipf(2.0) hot-key trace at S in {1,2,4,8,16} (DESIGN.md
#     §12 skew-adaptive routing row; probe imbalance is the headline)
#   - disorder: the regions trace at S=4 under bounded-disorder delivery
#     with K in {0,16,256} ms (DESIGN.md §13 reorder-buffer overhead row;
#     output invariance across K is the headline)
#   - batch:   the regions trace at S in {1,4} with worker ingest batch
#     in {0,64,256} (0 = per-arrival reference; DESIGN.md §15
#     batch-amortized probe path; output invariance across batch sizes
#     is the headline)
#
# Usage: scripts/bench_shard.sh [--scale S] [--zipf-only]
#
# --zipf-only re-measures only the shard_scaling_zipf section and keeps
# the existing uniform rows untouched. Use it on hosts that cannot
# reproduce the committed multi-core uniform wall-time baseline (the zipf
# headline — imbalance and routing counters — is deterministic and
# host-independent; see EXPERIMENTS.md).
#
# Artifact layout (BENCH_shard.json):
#   {
#     "shard_scaling":          [ {"shards": 1, "seconds": ...,
#                                  "output": ..., "speedup": ..., ...}, ... ],
#     "shard_scaling_zipf":     [ {"shards": 1, "imbalance": ...,
#                                  "hot_promoted": ..., "cores": ...}, ... ],
#     "shard_scaling_disorder": [ {"shards": 4, "disorder_k_ms": 0,
#                                  "seconds": ..., "output": ...}, ... ],
#     "shard_scaling_batch":    [ {"shards": 1, "batch": 0,
#                                  "seconds": ..., "output": ...}, ... ]
#   }
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="0.5"
ZIPF_ONLY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --scale) SCALE="$2"; shift 2 ;;
    --zipf-only) ZIPF_ONLY=1; shift ;;
    *) echo "usage: $0 [--scale S] [--zipf-only]" >&2; exit 2 ;;
  esac
done

if [ "$ZIPF_ONLY" = 0 ]; then
  echo "== shard_scaling uniform (scale $SCALE) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --json target/shard_scaling.json

  echo "== shard_scaling disorder (K in {0,16,256} ms) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --shards 4 --disorder 0,16,256 \
    --json target/shard_scaling_disorder.json

  echo "== shard_scaling batch (ingest batch in {0,64,256}) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --shards 1,4 --batch 0,64,256 \
    --json target/shard_scaling_batch.json
fi

echo "== shard_scaling zipf (theta 2.0) =="
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --zipf 2.0 --shards 1,2,4,8,16 --json target/shard_scaling_zipf.json

echo "== merging BENCH_shard.json =="
ZIPF_ONLY="$ZIPF_ONLY" python3 - <<'EOF'
import json
import os

doc = {}
if os.environ["ZIPF_ONLY"] == "1":
    with open("BENCH_shard.json") as f:
        doc = json.load(f)
else:
    with open("target/shard_scaling.json") as f:
        doc["shard_scaling"] = json.load(f)
    with open("target/shard_scaling_disorder.json") as f:
        doc["shard_scaling_disorder"] = json.load(f)
    with open("target/shard_scaling_batch.json") as f:
        doc["shard_scaling_batch"] = json.load(f)
with open("target/shard_scaling_zipf.json") as f:
    doc["shard_scaling_zipf"] = json.load(f)

with open("BENCH_shard.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
uniform = len(doc.get("shard_scaling", []))
zipf = len(doc["shard_scaling_zipf"])
disorder = len(doc.get("shard_scaling_disorder", []))
batch = len(doc.get("shard_scaling_batch", []))
print(
    f"wrote BENCH_shard.json ({uniform} uniform + {zipf} zipf "
    f"+ {disorder} disorder + {batch} batch rows)"
)
EOF
