#!/usr/bin/env bash
# Runs the shard-scaling throughput passes and merges BENCH_shard.json at
# the repo root:
#   - uniform: the regions trace at S in {1,2,4,8} (DESIGN.md §11 row;
#     wall-time speedup is the headline)
#   - zipf:    a Zipf(2.0) hot-key trace at S in {1,2,4,8,16} (DESIGN.md
#     §12 skew-adaptive routing row; probe imbalance is the headline)
#   - disorder: the regions trace at S=4 under bounded-disorder delivery
#     with K in {0,16,256} ms (DESIGN.md §13 reorder-buffer overhead row;
#     output invariance across K is the headline)
#   - batch:   the regions trace at S in {1,4} with worker ingest batch
#     in {0,64,256} (0 = per-arrival reference; DESIGN.md §15
#     batch-amortized probe path; output invariance across batch sizes
#     is the headline)
#   - score cache: the Zipf hot-key trace at theta in {1.5, 2.0}, S=4,
#     with the epoch-memoized productivity score cache on (default) and
#     pinned off via MSTREAM_SCORE_CACHE=off (DESIGN.md §16; the
#     score_ns / priority_rebuild_ns reduction is the headline, output
#     is identical by contract)
#
# Usage: scripts/bench_shard.sh [--scale S] [--zipf-only]
#
# --zipf-only re-measures only the shard_scaling_zipf section and keeps
# the existing uniform rows untouched. Use it on hosts that cannot
# reproduce the committed multi-core uniform wall-time baseline (the zipf
# headline — imbalance and routing counters — is deterministic and
# host-independent; see EXPERIMENTS.md).
#
# Artifact layout (BENCH_shard.json):
#   {
#     "shard_scaling":          [ {"shards": 1, "seconds": ...,
#                                  "output": ..., "speedup": ..., ...}, ... ],
#     "shard_scaling_zipf":     [ {"shards": 1, "imbalance": ...,
#                                  "hot_promoted": ..., "cores": ...}, ... ],
#     "shard_scaling_disorder": [ {"shards": 4, "disorder_k_ms": 0,
#                                  "seconds": ..., "output": ...}, ... ],
#     "shard_scaling_batch":    [ {"shards": 1, "batch": 0,
#                                  "seconds": ..., "output": ...}, ... ],
#     "score_cache_zipf":       [ {"shards": 4, "zipf_theta": 1.5,
#                                  "score_cache": "on"|"off",
#                                  "score_ns": ..., "priority_rebuild_ns":
#                                  ..., "output": ...}, ... ]
#   }
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="0.5"
ZIPF_ONLY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --scale) SCALE="$2"; shift 2 ;;
    --zipf-only) ZIPF_ONLY=1; shift ;;
    *) echo "usage: $0 [--scale S] [--zipf-only]" >&2; exit 2 ;;
  esac
done

if [ "$ZIPF_ONLY" = 0 ]; then
  echo "== shard_scaling uniform (scale $SCALE) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --json target/shard_scaling.json

  echo "== shard_scaling disorder (K in {0,16,256} ms) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --shards 4 --disorder 0,16,256 \
    --json target/shard_scaling_disorder.json

  echo "== shard_scaling batch (ingest batch in {0,64,256}) =="
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --scale "$SCALE" --shards 1,4 --batch 0,64,256 \
    --json target/shard_scaling_batch.json
fi

echo "== shard_scaling zipf (theta 2.0) =="
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --zipf 2.0 --shards 1,2,4,8,16 --json target/shard_scaling_zipf.json

echo "== score-cache A/B (zipf theta in {1.5, 2.0}, S=4) =="
for THETA in 1.5 2.0; do
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --zipf "$THETA" --shards 4 --min-secs 0.3 \
    --json "target/shard_scaling_sc_on_${THETA}.json"
  MSTREAM_SCORE_CACHE=off \
  cargo run --release -p mstream-bench --bin shard_scaling -- \
    --zipf "$THETA" --shards 4 --min-secs 0.3 \
    --json "target/shard_scaling_sc_off_${THETA}.json"
done

echo "== merging BENCH_shard.json =="
ZIPF_ONLY="$ZIPF_ONLY" python3 - <<'EOF'
import json
import os

doc = {}
if os.environ["ZIPF_ONLY"] == "1":
    with open("BENCH_shard.json") as f:
        doc = json.load(f)
else:
    with open("target/shard_scaling.json") as f:
        doc["shard_scaling"] = json.load(f)
    with open("target/shard_scaling_disorder.json") as f:
        doc["shard_scaling_disorder"] = json.load(f)
    with open("target/shard_scaling_batch.json") as f:
        doc["shard_scaling_batch"] = json.load(f)
with open("target/shard_scaling_zipf.json") as f:
    doc["shard_scaling_zipf"] = json.load(f)

# The score-cache A/B: four single-point sweeps (theta x on/off). The
# section name deliberately does NOT start with "shard_scaling" so
# bench_diff.sh never wall-time-gates these rows (on/off rows share a
# shard count and measure an intentional cost difference).
sc = []
for theta in ("1.5", "2.0"):
    for mode in ("on", "off"):
        with open(f"target/shard_scaling_sc_{mode}_{theta}.json") as f:
            for r in json.load(f):
                r["score_cache"] = mode
                sc.append(r)
doc["score_cache_zipf"] = sc

with open("BENCH_shard.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
uniform = len(doc.get("shard_scaling", []))
zipf = len(doc["shard_scaling_zipf"])
disorder = len(doc.get("shard_scaling_disorder", []))
batch = len(doc.get("shard_scaling_batch", []))
print(
    f"wrote BENCH_shard.json ({uniform} uniform + {zipf} zipf "
    f"+ {disorder} disorder + {batch} batch + {len(sc)} score-cache rows)"
)
by = {(r["zipf_theta"], r["score_cache"]): r for r in sc}
for theta in (1.5, 2.0):
    on, off = by[(theta, "on")], by[(theta, "off")]
    if on["output"] != off["output"]:
        raise SystemExit(
            f"FAIL: score cache changed zipf({theta}) output: "
            f"{on['output']} vs {off['output']}"
        )
    s_on, s_off = on["score_ns"], off["score_ns"]
    p_on, p_off = on["priority_rebuild_ns"], off["priority_rebuild_ns"]
    t_on, t_off = s_on + p_on, s_off + p_off
    print(
        f"score-cache zipf({theta}): score_ns {s_off} -> {s_on} "
        f"({s_on / s_off:.2f}x), score+rebuild {t_off} -> {t_on} "
        f"({t_on / t_off:.2f}x), outputs identical"
    )
EOF
