#!/usr/bin/env bash
# Nightly deep audit sweep: engine-vs-oracle differential fuzzing over
# randomly generated queries and workloads, with structural invariant
# checks after every arrival (see DESIGN.md §8).
#
# Usage: scripts/audit.sh [CASES] [SEED]
#
# Defaults to 1000 cases seeded from the date, so each night explores
# fresh cases while any failure stays reproducible: the failing case's
# seed is printed with a `replay <seed>` line and a shrunk minimal trace.
set -euo pipefail
cd "$(dirname "$0")/.."

CASES="${1:-1000}"
SEED="${2:-$(date +%Y%m%d)}"

echo "audit sweep: ${CASES} cases, master seed ${SEED}"
cargo run --release -p mstream-audit -- sweep --cases "${CASES}" --seed "${SEED}"
