#!/usr/bin/env bash
# Runs the multi-query sharing sweep and writes BENCH_multi.json at the
# repo root: N ∈ {1, 8, 64} standing pair joins in three execution modes
# (duplicate / distinct on the shared plane, independent engines as the
# one-query-one-engine baseline), full memory, exactness asserted in-bin
# (each duplicate reproduces the solo output count).
#
# Usage: scripts/bench_multi.sh [--scale S]
#
# Artifact layout (BENCH_multi.json):
#   {
#     "multi_query": [ {"mode": "duplicate", "queries": 64,
#                       "seconds": ..., "resident": ..., "vs_n1": ...}, ... ]
#   }
#
# scripts/bench_diff.sh OLD.json NEW.json compares two snapshots (rows
# keyed by mode AND query count) and fails on >10% wall-time regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="1.0"
while [ $# -gt 0 ]; do
  case "$1" in
    --scale) SCALE="$2"; shift 2 ;;
    *) echo "usage: $0 [--scale S]" >&2; exit 2 ;;
  esac
done

echo "== multi_query sharing sweep (scale $SCALE) =="
cargo run --release -p mstream-bench --bin multi_query -- \
  --scale "$SCALE" --json target/multi_query.json

echo "== merging BENCH_multi.json =="
python3 - <<'EOF'
import json

with open("target/multi_query.json") as f:
    rows = json.load(f)
with open("BENCH_multi.json", "w") as f:
    json.dump({"multi_query": rows}, f, indent=2, sort_keys=True)
print(f"wrote BENCH_multi.json ({len(rows)} rows)")
EOF
