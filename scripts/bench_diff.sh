#!/usr/bin/env bash
# Compares two BENCH_shard.json snapshots and fails on wall-time
# regressions, so a data-plane change can be gated on "no shard count
# got more than 10% slower".
#
# Usage: scripts/bench_diff.sh OLD.json NEW.json [--tolerance PCT]
#
# Every "shard_scaling*" section — uniform, the Zipf hot-key
# "shard_scaling_zipf", the bounded-disorder "shard_scaling_disorder"
# (rows keyed by shard count AND disorder bound), and the
# batch-amortized "shard_scaling_batch" (rows keyed by shard count AND
# ingest batch size, 0 = per-arrival) — plus the "multi_query" section
# of BENCH_multi.json (rows keyed by execution mode AND query count) is
# compared when present in both snapshots (a section missing on either
# side is noted and skipped).
# Prints a per-shard-count table (old/new seconds, delta, speedups,
# steady allocs) and exits nonzero if any shard count present in both
# snapshots regressed by more than the tolerance (default 10%).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 OLD.json NEW.json [--tolerance PCT]" >&2
  exit 2
fi
OLD="$1"
NEW="$2"
TOL="10"
if [ "${3:-}" = "--tolerance" ] && [ -n "${4:-}" ]; then TOL="$4"; fi

OLD="$OLD" NEW="$NEW" TOL="$TOL" python3 - <<'EOF'
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    # Accept either the merged artifact ({"shard_scaling": [...], ...}) or
    # the raw --json row list written by the shard_scaling binary.
    if isinstance(doc, dict):
        sections = {
            k: v
            for k, v in doc.items()
            if k.startswith("shard_scaling") or k == "multi_query"
        }
    else:
        sections = {"shard_scaling": doc}
    def row_key(r):
        # Multi-query rows are keyed by execution mode and query count.
        if "mode" in r:
            return (r["mode"], int(r["queries"]))
        # Batch rows repeat shard counts across ingest batch sizes; the
        # "B" tag keeps them distinct from disorder keys.
        if r.get("batch") is not None:
            return (int(r["shards"]), "B", int(r["batch"]))
        # Disorder rows repeat shard counts across bounds; key on both.
        k = r.get("disorder_k_ms")
        return int(r["shards"]) if k is None else (int(r["shards"]), int(k))

    return {name: {row_key(r): r for r in rows} for name, rows in sections.items()}


old_path, new_path = os.environ["OLD"], os.environ["NEW"]
tol = float(os.environ["TOL"]) / 100.0
old_doc, new_doc = load(old_path), load(new_path)

shared_sections = sorted(set(old_doc) & set(new_doc))
if not shared_sections:
    sys.exit(f"FAIL: no shard_scaling sections in common between {old_path} and {new_path}")
for name in sorted(set(old_doc) ^ set(new_doc)):
    side = new_path if name in new_doc else old_path
    print(f"note: section {name} only present in {side}, skipped")

regressed = []
compared = 0
for name in shared_sections:
    old, new = old_doc[name], new_doc[name]
    shared = sorted(set(old) & set(new), key=lambda s: s if isinstance(s, tuple) else (s, -1))
    if not shared:
        print(f"note: {name}: no shard counts in common, skipped")
        continue
    for s in sorted(set(old) ^ set(new), key=lambda s: s if isinstance(s, tuple) else (s, -1)):
        side = new_path if s in new else old_path
        print(f"note: {name}: S={s} only present in {side}, skipped")

    print(f"[{name}]")
    key_col = "mode/N" if name == "multi_query" else "S"
    header = f"{key_col:>15}  {'old s':>9}  {'new s':>9}  {'delta':>8}  {'old spd':>8}  {'new spd':>8}  {'allocs':>7}"
    print(header)
    print("-" * len(header))
    for s in shared:
        o, n = old[s], new[s]
        if isinstance(s, int):
            label = str(s)
        elif len(s) == 3:
            label = f"{s[0]}/B{s[2]}" if s[2] else f"{s[0]}/per-arrival"
        elif isinstance(s[0], int):
            label = f"{s[0]}/K{s[1]}"
        else:
            label = f"{s[0]}/N{s[1]}"
        delta = (n["seconds"] - o["seconds"]) / o["seconds"]
        allocs = n.get("steady_allocs", "-")
        print(
            f"{label:>15}  {o['seconds']:>9.5f}  {n['seconds']:>9.5f}  {delta:>+7.1%} "
            f" {o.get('speedup', 1.0):>8.2f}  {n.get('speedup', 1.0):>8.2f}  {allocs:>7}"
        )
        compared += 1
        if delta > tol:
            regressed.append((name, s, delta))

if not compared:
    sys.exit(f"FAIL: no shard counts in common between {old_path} and {new_path}")
if regressed:
    worst = ", ".join(f"{name} S={s} {d:+.1%}" for name, s, d in regressed)
    sys.exit(f"FAIL: wall-time regression beyond {tol:.0%}: {worst}")
print(f"OK: no shard count regressed by more than {tol:.0%} ({compared} compared)")
EOF
