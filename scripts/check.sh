#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, clippy with warnings
# denied. CI and pre-commit both call this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Differential audit smoke: every policy vs the exact oracle over 50
# fuzzed cases, with per-arrival structural invariant checks.
cargo run --release -p mstream-audit -- sweep --cases 50 --seed 7
