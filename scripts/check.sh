#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, clippy with warnings
# denied. CI and pre-commit both call this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Differential audit smoke: every policy vs the exact oracle over 50
# fuzzed cases, with per-arrival structural invariant checks (includes the
# sharded-vs-oracle differential at the case's shard count). Odd-seed
# cases additionally run every engine twice — productivity score cache
# forced on and off — and the runs must be bit-identical (DESIGN.md §16).
cargo run --release -p mstream-audit -- sweep --cases 50 --seed 7
# Event-time disorder smoke (DESIGN.md §13): for fuzzed cases across every
# policy and both memory modes, a K=0 run is bit-identical to the trusting
# engine, a shuffle bounded by K reproduces the in-order output exactly
# (single-engine and sharded at S in {1, case shards}), and beyond-bound
# lateness is dropped, counted, and never joined. Odd-seed cases A/B the
# score cache through the event-time path (prev-epoch memo keying).
cargo run --release -p mstream-audit -- disorder --cases 25 --seed 7

# Sharded-vs-single CLI differential smoke: the same key-partitionable
# query and trace must produce the same output count at S in {1,2,4} when
# nothing sheds (full memory, blocking channels).
KEYED_QUERY='SELECT * FROM R1(A1, A2) [RANGE 30 SECONDS], R2(A1, A2), R3(A1, A2)
             WHERE R1.A1 = R2.A1 AND R2.A1 = R3.A1'
cargo run --release -p mstream-cli -- generate \
  --workload regions --tuples 400 --out target/check_shard_trace.csv
BASELINE=""
for S in 1 2 4; do
  OUT=$(cargo run --release -p mstream-cli -- run \
    --query "$KEYED_QUERY" --trace target/check_shard_trace.csv \
    --capacity 100000 --shards "$S" --json \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); print(r["output_tuples"], r["shards"], r["shed_window"], r["shed_channel"])')
  read -r TUPLES GOT_S SHED_W SHED_C <<<"$OUT"
  [ "$GOT_S" = "$S" ] || { echo "FAIL: requested $S shards, ran $GOT_S"; exit 1; }
  [ "$SHED_W" = 0 ] && [ "$SHED_C" = 0 ] || { echo "FAIL: full-memory run shed ($SHED_W window, $SHED_C channel)"; exit 1; }
  if [ -z "$BASELINE" ]; then BASELINE="$TUPLES"; fi
  [ "$TUPLES" = "$BASELINE" ] || { echo "FAIL: S=$S produced $TUPLES tuples, S=1 produced $BASELINE"; exit 1; }
  echo "shard smoke: S=$S -> $TUPLES output tuples (matches baseline)"
done

# Score-cache env-pin smoke (DESIGN.md §16): MSTREAM_SCORE_CACHE=off must
# leave the run's semantics untouched (the memo is a pure evaluation
# shortcut), and the default run must actually drive traffic through the
# cache. The audits above A/B via the builder override; this covers the
# process-wide env pin end to end.
SC_ON=$(cargo run --release -p mstream-cli -- run \
  --query "$KEYED_QUERY" --trace target/check_shard_trace.csv \
  --capacity 64 --json --stage-json)
SC_OFF=$(MSTREAM_SCORE_CACHE=off cargo run --release -p mstream-cli -- run \
  --query "$KEYED_QUERY" --trace target/check_shard_trace.csv \
  --capacity 64 --json --stage-json)
SC_ON="$SC_ON" SC_OFF="$SC_OFF" python3 - <<'EOF'
import json, os
def parse(blob):
    dec = json.JSONDecoder()
    docs, i = [], 0
    while i < len(blob):
        doc, end = dec.raw_decode(blob, i)
        docs.append(doc)
        i = end
        while i < len(blob) and blob[i].isspace():
            i += 1
    return docs
on_report, on_stages = parse(os.environ["SC_ON"])
off_report, off_stages = parse(os.environ["SC_OFF"])
for key in ("output_tuples", "shed_window", "shed_queue", "expired", "epoch_rollovers"):
    if on_report[key] != off_report[key]:
        raise SystemExit(
            f"FAIL: MSTREAM_SCORE_CACHE=off changed {key}: "
            f"{off_report[key]} vs {on_report[key]}"
        )
on_traffic = on_stages["stages"]["score_cache_hits"] + on_stages["stages"]["score_cache_misses"]
off_traffic = off_stages["stages"]["score_cache_hits"] + off_stages["stages"]["score_cache_misses"]
if on_traffic == 0:
    raise SystemExit("FAIL: default run drove no score-cache traffic")
if off_traffic != 0:
    raise SystemExit(f"FAIL: pinned-off run still counted {off_traffic} cache lookups")
print(
    f"score-cache smoke: on/off outputs identical "
    f"({on_report['output_tuples']} rows), "
    f"{on_stages['stages']['score_cache_hits']} hits / "
    f"{on_stages['stages']['score_cache_misses']} misses when enabled"
)
EOF

# Hot-path equivalence smoke: the open-addressed index vs the HashMap
# model, and the iterative probe kernel vs the retained recursive one
# (property tests), then a quick probe/eviction microbench pass whose
# correctness assertions compare flat vs legacy-replica results.
cargo test -q -p mstream-window --test index_equivalence
cargo test -q -p mstream-join --test probe_equivalence
cargo run --release -p mstream-bench --bin probe_micro -- --quick

# Sharded data-plane determinism suite (DESIGN.md §11): coalesced-tick
# equivalence vs the per-arrival oracle, S=1 bit-identity under shedding,
# buffer-recycling stress at channel capacity 1, and Shed-backpressure
# arrival accounting.
cargo test -q --test sharded_join

# Vectorized kernel + batch-amortized ingest suite (DESIGN.md §15):
# vector-vs-scalar bit-equality proptests over every kernel and dispatch
# mode, then the batched-vs-per-arrival differential (batch in {1,7,64};
# single engine, sharded S in {1,4}, multi-query) which pins emissions,
# metrics, and shed decisions bit-identical to per-arrival replay.
cargo test -q -p mstream-sketch --test equivalence
cargo test -q --test batched_ingest
# Batch-knob output-invariance smoke: the same trace at S in {1,4} with
# worker ingest batching off (0 = per-arrival) and on (64) must produce
# identical output counts per shard count without shedding.
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --scale 0.1 --mem-pct 100 --shards 1,4 --batch 0,64 --min-secs 0.05 \
  --json target/check_batch.json
python3 - <<'EOF'
import json
rows = json.load(open("target/check_batch.json"))
by = {(r["shards"], r["batch"]): r for r in rows}
need = {(1, 0), (1, 64), (4, 0), (4, 64)}
assert need <= set(by), f"missing rows: {sorted(need - set(by))}"
for s in (1, 4):
    off, on = by[(s, 0)], by[(s, 64)]
    if off["output"] != on["output"]:
        raise SystemExit(
            f"FAIL: S={s} batch=64 output {on['output']} != per-arrival {off['output']}"
        )
    if off["shed_window"] or on["shed_window"]:
        raise SystemExit(f"FAIL: S={s} lossless batch smoke shed windows")
    print(f"batch smoke: S={s} per-arrival == B64 ({off['output']} rows)")
EOF

# Skew-adaptive routing differential smoke (DESIGN.md §12): at provably
# lossless memory (--mem-pct 100: every window can hold the whole trace on
# every shard) the same trace must produce the identical output multiset
# at S=1 and S=4 — for the uniform regions workload and for a Zipf
# hot-key workload where the router demonstrably promotes and splits
# heavy hitters with replicated build sides.
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --scale 0.1 --mem-pct 100 --shards 1,4 --min-secs 0.05 \
  --json target/check_skew_uniform.json
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --zipf 2.0 --scale 0.1 --mem-pct 100 --shards 1,4 --min-secs 0.05 \
  --json target/check_skew_zipf.json
python3 - <<'EOF'
import json
for name, want_hot in [("uniform", False), ("zipf", True)]:
    rows = json.load(open(f"target/check_skew_{name}.json"))
    by_s = {r["shards"]: r for r in rows}
    assert set(by_s) == {1, 4}, f"{name}: expected S in {{1,4}}, got {sorted(by_s)}"
    outs = {s: r["output"] for s, r in by_s.items()}
    if outs[1] != outs[4]:
        raise SystemExit(f"FAIL: {name} S=4 output {outs[4]} != S=1 output {outs[1]}")
    shed = {s: r["shed_window"] for s, r in by_s.items()}
    if any(shed.values()):
        raise SystemExit(f"FAIL: {name} lossless run shed windows: {shed}")
    if want_hot and by_s[4]["hot_promoted"] == 0:
        raise SystemExit("FAIL: zipf smoke never promoted a hot key")
    if want_hot and by_s[4]["replicated"] == 0:
        raise SystemExit("FAIL: zipf smoke never replicated a build side")
    print(f"skewed-route smoke: {name} S=1 == S=4 ({outs[1]} rows, "
          f"hot_promoted={by_s[4]['hot_promoted']})")
EOF

# Multi-query sharing smoke (DESIGN.md §14): multi-query differential
# audit over fuzzed 2-4-query sets (each query vs its own solo exact
# oracle, in-process and sharded S in {1,2}), then the bench acceptance
# gate — at full memory, N=64 duplicate standing queries must cost
# <= 1.5x the wall time and <= 2x the resident state of N=1 on the
# shared plane while each duplicate reproduces the solo output count,
# and the independent-engine baseline must cost more than the shared
# plane at N=64.
cargo run --release -p mstream-audit -- multi --cases 25 --seed 7
cargo run --release -p mstream-bench --bin multi_query -- \
  --scale 0.1 --queries 1,64 --min-secs 0.05 --json target/check_multi.json
python3 - <<'EOF'
import json
rows = json.load(open("target/check_multi.json"))
by = {(r["mode"], r["queries"]): r for r in rows}
need = {("duplicate", 1), ("duplicate", 64), ("independent", 64)}
assert need <= set(by), f"missing rows: {sorted(need - set(by))}"
d1, d64, i64 = by[("duplicate", 1)], by[("duplicate", 64)], by[("independent", 64)]
for r in (d1, d64):
    if r["produced_per_query"] != r["solo_produced"]:
        raise SystemExit(
            f"FAIL: duplicate N={r['queries']} produced {r['produced_per_query']} "
            f"per query, solo produced {r['solo_produced']}"
        )
if d64["seconds"] > 1.5 * d1["seconds"]:
    raise SystemExit(
        f"FAIL: N=64 duplicates took {d64['seconds']:.3f}s, "
        f"more than 1.5x N=1 ({d1['seconds']:.3f}s)"
    )
if d64["resident"] > 2 * d1["resident"]:
    raise SystemExit(
        f"FAIL: N=64 duplicates hold {d64['resident']} resident tuples, "
        f"more than 2x N=1 ({d1['resident']})"
    )
if i64["seconds"] <= d64["seconds"]:
    raise SystemExit(
        f"FAIL: 64 independent engines ({i64['seconds']:.3f}s) did not cost "
        f"more than the shared plane ({d64['seconds']:.3f}s)"
    )
print(
    f"multi-query smoke: N=64 duplicates {d64['seconds'] / d1['seconds']:.2f}x "
    f"wall, {d64['resident'] / d1['resident']:.2f}x resident of N=1 "
    f"(independent baseline {i64['seconds'] / d64['seconds']:.1f}x the shared plane)"
)
EOF

# Route-only data-plane smoke: mint + route + channel round-trip with the
# join disabled must reach a zero-allocation steady state at some S.
cargo run --release -p mstream-bench --bin shard_scaling -- \
  --route-only --scale 0.2 --json target/check_route_only.json
python3 - <<'EOF'
import json
rows = json.load(open("target/check_route_only.json"))
assert rows, "route-only smoke produced no rows"
assert all(r["route_only"] for r in rows), "rows not marked route_only"
best = min(r["steady_allocs"] for r in rows)
if best != 0:
    raise SystemExit(f"FAIL: route-only steady state allocates ({best} allocs)")
print(f"route-only smoke: steady_allocs min={best} over S={[r['shards'] for r in rows]}")
EOF
