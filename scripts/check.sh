#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, clippy with warnings
# denied. CI and pre-commit both call this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
