#!/usr/bin/env bash
# Runs the sketch-kernel microbenchmarks plus the fig3_time stage-timing
# pass and merges everything into BENCH_sketch.json at the repo root.
#
# Usage: scripts/bench_sketch.sh [--scale S]
#
# Artifact layout (BENCH_sketch.json):
#   {
#     "criterion": { "<group>/<bench>": {"mean_ns": ..., "median_ns": ...} },
#     "fig3_stages": [ {"policy": ..., "sketch_observe_ns": ...}, ... ]
#   }
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${2:-0.25}"
if [ "${1:-}" = "--scale" ] && [ -n "${2:-}" ]; then SCALE="$2"; fi

echo "== criterion: sketch kernels =="
cargo bench -p mstream-bench --bench bench_sketch | tee target/bench_sketch.out

echo "== fig3_time stage timings (scale $SCALE) =="
cargo run --release -p mstream-bench --bin fig3_time -- \
  --scale "$SCALE" --stage-json target/fig3_stages.json

echo "== merging BENCH_sketch.json =="
python3 - <<'EOF'
import json, os, re, glob

out = {"criterion": {}, "fig3_stages": []}

# Upstream criterion drops one estimates.json per benchmark under
# target/criterion; the vendored harness instead prints one
# "<group>/<bench>: X ms/iter (N iters)" line per benchmark. Accept both.
for path in sorted(glob.glob("target/criterion/**/new/estimates.json", recursive=True)):
    parts = path.split(os.sep)
    # .../criterion/<group>[/<bench>]/new/estimates.json
    name = "/".join(parts[2:-2])
    if not name or name.startswith("report"):
        continue
    with open(path) as f:
        est = json.load(f)
    out["criterion"][name] = {
        "mean_ns": est["mean"]["point_estimate"],
        "median_ns": est["median"]["point_estimate"],
    }
if not out["criterion"] and os.path.exists("target/bench_sketch.out"):
    line = re.compile(r"^([\w/ -]+): ([0-9.]+) ms/iter \((\d+) iters\)$")
    with open("target/bench_sketch.out") as f:
        for raw in f:
            m = line.match(raw.strip())
            if m:
                ns = float(m.group(2)) * 1e6
                out["criterion"][m.group(1)] = {
                    "mean_ns": ns,
                    "median_ns": ns,
                    "iters": int(m.group(3)),
                }

stages = "target/fig3_stages.json"
if os.path.exists(stages):
    with open(stages) as f:
        out["fig3_stages"] = json.load(f)

with open("BENCH_sketch.json", "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
print(f"wrote BENCH_sketch.json "
      f"({len(out['criterion'])} criterion entries, "
      f"{len(out['fig3_stages'])} fig3 policies)")
EOF
