#!/usr/bin/env bash
# Runs the probe/eviction hot-path microbenches (flat path vs faithful
# replicas of the pre-rewrite path, see crates/bench/src/bin/probe_micro.rs)
# and writes BENCH_probe.json at the repo root.
#
# Usage: scripts/bench_probe.sh [--quick]
#
# Artifact layout (BENCH_probe.json):
#   {
#     "probe_micro": [ {"bench": "probe_chain2", "baseline": ...,
#                       "baseline_ns_per_op": ..., "flat_ns_per_op": ...,
#                       "speedup": ..., "ops": ...}, ... ]
#   }
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
if [ "${1:-}" = "--quick" ]; then QUICK="--quick"; fi

echo "== probe_micro ${QUICK:-(full)} =="
# shellcheck disable=SC2086
cargo run --release -p mstream-bench --bin probe_micro -- \
  $QUICK --json target/probe_micro.json

echo "== merging BENCH_probe.json =="
python3 - <<'EOF'
import json

with open("target/probe_micro.json") as f:
    rows = json.load(f)

with open("BENCH_probe.json", "w") as f:
    json.dump({"probe_micro": rows}, f, indent=2, sort_keys=True)
print(f"wrote BENCH_probe.json ({len(rows)} benches)")
EOF
