//! Acceptance tests for the multi-query shared data plane (DESIGN.md
//! "Multi-query sharing").
//!
//! The contract under test:
//!
//! * At full memory, every standing query's output on the shared plane is
//!   bit-identical (modulo stream tags, which are owner-local by design)
//!   to a solo engine fed only that query's streams — duplicates,
//!   overlapping subgraphs and disjoint queries alike.
//! * Under reduced memory, each query's shed output is a sub-multiset of
//!   its own solo exact result.
//! * A query registered mid-run sees only the suffix: its output matches
//!   a solo engine started at the registration point, and the standing
//!   queries are unperturbed by the registration.
//! * Removing a query stops its emission, frees sole-user stores and
//!   budget, and leaves the survivors bit-identical to a run where the
//!   removed query was never registered.
//! * The sharded coordinator (S ∈ {1, 2}) reproduces the in-process
//!   result set at full memory, including across runtime add/remove.

use mstream_core::prelude::*;
use mstream_types::Row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An equi-join pair over two named streams, keyed on attribute 0 (the
/// key-partitionable shape, so sharded runs keep their full width).
fn pair(l: &str, r: &str, secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new(l, &["A1", "A2"]));
    c.add_stream(StreamSchema::new(r, &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[(format!("{l}.A1").as_str(), format!("{r}.A1").as_str())],
        WindowSpec::secs(secs),
    )
    .unwrap()
}

/// A three-way chain keyed entirely on attribute 0.
fn keyed_chain(a: &str, b: &str, c_name: &str, secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new(a, &["A1", "A2"]));
    c.add_stream(StreamSchema::new(b, &["A1", "A2"]));
    c.add_stream(StreamSchema::new(c_name, &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[
            (format!("{a}.A1").as_str(), format!("{b}.A1").as_str()),
            (format!("{b}.A1").as_str(), format!("{c_name}.A1").as_str()),
        ],
        WindowSpec::secs(secs),
    )
    .unwrap()
}

/// A named-stream trace: (stream name, row, timestamp). Timestamps
/// advance one second every five arrivals so windows genuinely slide.
fn trace(names: &[&str], n: usize, domain: u64, seed: u64) -> Vec<(String, Row, VTime)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let name = names[rng.gen_range(0..names.len())];
            let row: Row = vec![
                Value(rng.gen_range(0..domain)),
                Value(rng.gen_range(0..domain)),
            ]
            .into();
            (name.to_string(), row, VTime::from_secs(i as u64 / 5))
        })
        .collect()
}

/// Drives the shared engine over a named trace, collecting per-query
/// rows. Arrivals on streams no registered query references are skipped
/// (an external feed would have nowhere to route them).
fn feed(
    engine: &mut MultiQueryEngine,
    t: &[(String, Row, VTime)],
    sink: &mut QueryRowsSink,
) {
    for (name, row, ts) in t {
        let Some(g) = engine.stream_id(name) else {
            continue;
        };
        engine.ingest(Arrival::new(g, row.clone(), *ts), sink);
    }
}

/// Projects result rows to comparable form. Stream tags and sequence
/// numbers differ between the shared plane (global spaces) and a solo
/// engine (per-query spaces) by design; timestamps and payloads are the
/// observable output.
fn projected(rows: &[Vec<Tuple>]) -> Vec<Vec<(u64, Row)>> {
    rows.iter()
        .map(|r| r.iter().map(|t| (t.ts.as_micros(), t.values.clone())).collect())
        .collect()
}

/// Runs `query` solo over the arrivals on its own streams and returns the
/// projected rows in emission order.
fn solo(query: JoinQuery, t: &[(String, Row, VTime)], capacity: usize) -> Vec<Vec<(u64, Row)>> {
    let mut engine = EngineBuilder::new(query)
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5)
        .build()
        .unwrap();
    let mut sink = VecSink::default();
    for (name, row, ts) in t {
        let Some((id, _)) = engine
            .query()
            .catalog()
            .iter()
            .find(|(_, s)| s.name == *name)
        else {
            continue; // stream not referenced by this query
        };
        engine.ingest(Arrival::new(id, row.clone(), *ts), &mut sink);
    }
    projected(&sink.rows)
}

/// Multiset inclusion: every row of `sub` is matched against (and
/// consumes) a row of `sup`.
fn assert_sub_multiset(sub: &[Vec<(u64, Row)>], sup: &[Vec<(u64, Row)>], label: &str) {
    let mut pool = sup.to_vec();
    for row in sub {
        let pos = pool
            .iter()
            .position(|r| r == row)
            .unwrap_or_else(|| panic!("{label}: shed run emitted a row its solo oracle never produced"));
        pool.swap_remove(pos);
    }
}

/// The standing mix used throughout: a duplicate pair, a chain that
/// overlaps the pair's stream set, and a disjoint pair.
fn standing_mix() -> Vec<JoinQuery> {
    vec![
        pair("R1", "R2", 40),
        pair("R1", "R2", 40),
        keyed_chain("R1", "R2", "R3", 40),
        pair("A", "B", 40),
    ]
}

fn build_multi(queries: &[JoinQuery], capacity: usize) -> MultiQueryEngine {
    let mut b = EngineBuilder::new_multi()
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5);
    for q in queries {
        b.register(q.clone()).unwrap();
    }
    b.build_multi().unwrap()
}

/// At full memory nothing is shed, so sharing windows across queries is
/// invisible: every query's output equals its solo run, in order.
#[test]
fn full_memory_per_query_output_matches_each_solo_run() {
    let queries = standing_mix();
    let t = trace(&["R1", "R2", "R3", "A", "B"], 1000, 8, 11);
    let mut engine = build_multi(&queries, 100_000);
    assert_eq!(engine.n_queries(), 4);
    assert_eq!(engine.n_classes(), 3, "duplicates collapse into one class");
    let mut sink = QueryRowsSink::default();
    feed(&mut engine, &t, &mut sink);
    assert!(!sink.rows[0].is_empty(), "trace must produce joins");
    for (i, q) in queries.into_iter().enumerate() {
        let oracle = solo(q, &t, 100_000);
        assert_eq!(
            projected(&sink.rows[i]),
            oracle,
            "query {i} diverged from its solo run"
        );
        let stats = engine.query_stats(QueryId(i as u32)).unwrap();
        assert_eq!(stats.produced, sink.rows[i].len() as u64, "query {i}");
        assert_eq!(stats.shed, 0, "query {i}: full memory never sheds");
    }
}

/// Under reduced memory the shared plane sheds, but can only lose rows:
/// each query's output stays a sub-multiset of its own solo exact result.
#[test]
fn shed_run_is_a_per_query_sub_multiset_of_solo_exact() {
    let queries = standing_mix();
    let t = trace(&["R1", "R2", "R3", "A", "B"], 1500, 6, 12);
    let mut engine = build_multi(&queries, 16);
    let mut sink = QueryRowsSink::default();
    feed(&mut engine, &t, &mut sink);
    assert!(engine.metrics().shed_window > 0, "capacity 16 must shed");
    for (i, q) in queries.into_iter().enumerate() {
        let oracle = solo(q, &t, 1 << 20);
        assert_sub_multiset(&projected(&sink.rows[i]), &oracle, &format!("query {i}"));
    }
}

/// Runtime registration has suffix semantics: a query added mid-trace
/// matches a solo engine that saw only the suffix, and the standing
/// queries behave as if nothing happened.
#[test]
fn query_added_mid_trace_matches_a_solo_run_over_the_suffix() {
    let t = trace(&["R1", "R2", "R3"], 800, 8, 13);
    let (head, tail) = t.split_at(400);
    let mut engine = build_multi(&[pair("R1", "R2", 40)], 100_000);
    let mut sink = QueryRowsSink::default();
    feed(&mut engine, head, &mut sink);
    let added = engine.add_query(keyed_chain("R1", "R2", "R3", 40)).unwrap();
    assert_eq!(added, QueryId(1));
    feed(&mut engine, tail, &mut sink);

    let suffix_oracle = solo(keyed_chain("R1", "R2", "R3", 40), tail, 100_000);
    assert!(!suffix_oracle.is_empty(), "suffix must produce joins");
    assert_eq!(
        projected(&sink.rows[1]),
        suffix_oracle,
        "late query must match a solo run over the suffix only"
    );
    let full_oracle = solo(pair("R1", "R2", 40), &t, 100_000);
    assert_eq!(
        projected(&sink.rows[0]),
        full_oracle,
        "standing query perturbed by the registration"
    );
}

/// Removal is clean: the removed query stops emitting immediately, its
/// sole-user stores and budget are freed, and the survivors' remaining
/// output is bit-identical to a run where it was never registered.
#[test]
fn removed_query_frees_budget_without_perturbing_survivors() {
    let queries = vec![pair("R1", "R2", 40), pair("A", "B", 40)];
    let t = trace(&["R1", "R2", "A", "B"], 800, 6, 14);
    let capacity = 24; // sheds, so the freed budget is observable

    let mut engine = build_multi(&queries, capacity);
    assert_eq!(engine.n_stores(), 4);
    let mut sink = QueryRowsSink::default();
    feed(&mut engine, &t[..400], &mut sink);
    let stores_before = engine.n_stores();
    let resident_before = engine.total_resident();
    assert!(engine.remove_query(QueryId(1)));
    assert!(engine.query_stats(QueryId(1)).is_none());
    assert!(engine.n_stores() < stores_before, "sole-user stores freed");
    assert!(
        engine.total_resident() < resident_before,
        "freed stores return their residents to the budget"
    );
    let emitted_before_removal = sink.rows[1].len();
    feed(&mut engine, &t[400..], &mut sink);
    assert_eq!(
        sink.rows[1].len(),
        emitted_before_removal,
        "removed query must stop emitting"
    );

    // Survivor differential: same trace, the removed query never existed.
    let mut solo_engine = build_multi(&[pair("R1", "R2", 40)], capacity);
    let mut solo_sink = QueryRowsSink::default();
    feed(&mut solo_engine, &t, &mut solo_sink);
    assert_eq!(
        projected(&sink.rows[0]),
        projected(&solo_sink.rows[0]),
        "survivor diverged from the never-registered baseline"
    );
}

/// Sorts projected rows for order-insensitive comparison (shard merge
/// order is canonical but differs from single-threaded emission order).
fn sorted(mut rows: Vec<Vec<(u64, Row)>>) -> Vec<Vec<(u64, Vec<Value>)>> {
    let mut out: Vec<Vec<(u64, Vec<Value>)>> = rows
        .drain(..)
        .map(|r| r.into_iter().map(|(ts, row)| (ts, row.iter().cloned().collect())).collect())
        .collect();
    out.sort();
    out
}

/// The sharded coordinator at full memory reproduces the in-process
/// result set for S ∈ {1, 2}, runtime add/remove included: the added
/// query sees only the suffix, the removed query reports zeros.
#[test]
fn sharded_full_memory_matches_in_process_across_add_and_remove() {
    let queries = vec![pair("R1", "R2", 40), keyed_chain("R1", "R2", "R3", 40)];
    let t = trace(&["R1", "R2", "R3"], 800, 8, 15);
    let (head, tail) = t.split_at(400);

    // In-process reference with the same add/remove schedule.
    let mut reference = build_multi(&queries, 100_000);
    let mut ref_sink = QueryRowsSink::default();
    feed(&mut reference, head, &mut ref_sink);
    let added = reference.add_query(pair("R2", "R3", 40)).unwrap();
    assert!(reference.remove_query(QueryId(1)));
    feed(&mut reference, tail, &mut ref_sink);
    assert!(!ref_sink.rows[added.index()].is_empty(), "added query joins");

    for shards in [1usize, 2] {
        let mut b = EngineBuilder::new_multi()
            .policy(MSketch)
            .capacity_per_window(100_000)
            .seed(5)
            .shard_config(ShardConfig {
                shards,
                channel_capacity: 4,
                batch_size: 7,
                collect_rows: true,
                ..ShardConfig::default()
            });
        for q in &queries {
            b.register(q.clone()).unwrap();
        }
        let mut engine = b.build_multi_sharded().unwrap();
        assert_eq!(engine.shards(), shards, "keyed set must keep full width");
        assert_eq!(engine.degraded(), None);
        for (name, row, ts) in head {
            let g = engine.stream_id(name).unwrap();
            engine.ingest(Arrival::new(g, row.clone(), *ts));
        }
        assert_eq!(engine.add_query(pair("R2", "R3", 40)).unwrap(), added);
        engine.remove_query(QueryId(1));
        for (name, row, ts) in tail {
            let g = engine.stream_id(name).unwrap();
            engine.ingest(Arrival::new(g, row.clone(), *ts));
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.shed_channel, 0, "Block backpressure never drops");
        assert_eq!(report.metrics.shed_window, 0, "full memory never sheds");
        let rows = report.rows.as_ref().unwrap();
        for q in [0, added.index()] {
            assert_eq!(
                sorted(projected(&rows[q])),
                sorted(projected(&ref_sink.rows[q])),
                "S={shards}: query {q} diverged from the in-process run"
            );
            assert_eq!(
                report.stats[q].produced,
                rows[q].len() as u64,
                "S={shards}: query {q} stats"
            );
        }
        assert_eq!(
            report.stats[1],
            QueryStats::default(),
            "S={shards}: removed query reports zeros"
        );
    }
}
