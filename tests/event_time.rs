//! Event-time front-end semantics, pinned across layers (DESIGN.md §13).
//!
//! With `EngineBuilder::disorder_bound(K)` the engine stops trusting
//! arrival order: arrivals buffer in per-stream reorder buffers and are
//! released in timestamp order as the watermark (minimum cross-stream
//! high-water mark minus `K`) advances. The contracts pinned here:
//!
//! - **Non-monotone timestamps never panic.** An arrival with a regressed
//!   timestamp beyond the bound is dropped, counted in
//!   [`EngineMetrics::late_dropped`], and leaves the output untouched.
//! - **The accept/drop boundary is exact.** A timestamp equal to the
//!   watermark (exactly `K` late) is accepted — on either stream; one
//!   microsecond below it is dropped.
//! - **`K = 0` is bit-identical to the trusting engine** on an in-order
//!   trace: same rows, same emit order, same sequence numbers.
//! - **Covered disorder is invisible.** A shuffle whose lateness stays
//!   within `K` reproduces the in-order run exactly.
//! - **The sharded coordinator re-keys its fan-out gate** off the same
//!   watermark: a hot-key promotion instant crossed under injected
//!   lateness still matches the exact oracle at full memory.

use mstream_core::prelude::*;

fn chain3(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

fn pair_query(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1"]));
    c.add_stream(StreamSchema::new("R2", &["A1"]));
    JoinQuery::uniform(
        c,
        vec![EquiPredicate::new(
            AttrRef::new(StreamId(0), 0),
            AttrRef::new(StreamId(1), 0),
        )],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

/// One canonical result row: per-stream `(seq, values…)` flattened in
/// stream order — equal rows mean the two runs minted identical sequence
/// numbers and joined identical tuples.
fn row(b: &Bindings<'_>, n: usize) -> Vec<u64> {
    let mut r = Vec::new();
    for k in 0..n {
        let t = b.tuple(StreamId(k));
        r.push(t.seq.0);
        r.extend(t.values.iter().map(|v| v.0));
    }
    r
}

/// Drives `trace` through an engine (front end armed iff `bound` is set)
/// plus the end-of-trace flush, returning the rows in emit order and the
/// final metrics.
fn drive(
    query: JoinQuery,
    bound: Option<VDur>,
    capacity: usize,
    trace: &[(usize, Vec<Value>, u64)],
) -> (Vec<Vec<u64>>, EngineMetrics) {
    let n = query.n_streams();
    let mut builder = EngineBuilder::new(query)
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5);
    if let Some(k) = bound {
        builder = builder.disorder_bound(k);
    }
    let mut engine = builder.build().unwrap();
    let mut rows = Vec::new();
    for (stream, vals, at) in trace {
        engine.ingest(
            Arrival::new(StreamId(*stream), vals.clone(), VTime::from_micros(*at)),
            &mut FnSink(|b: &Bindings<'_>| rows.push(row(b, n))),
        );
    }
    engine.flush(&mut FnSink(|b: &Bindings<'_>| rows.push(row(b, n))));
    (rows, engine.metrics().clone())
}

/// An in-order chain3 trace with enough value collisions to join: arrivals
/// every 0.5s round-robin across the three streams, each round-robin
/// triple sharing a join value (two values alternate, so cross-triple
/// matches land inside the window too).
fn chain3_trace(len: u64) -> Vec<(usize, Vec<Value>, u64)> {
    (0..len)
        .map(|i| {
            let v = (i / 3) % 2;
            ((i % 3) as usize, vec![Value(v), Value(v)], i * 500_000)
        })
        .collect()
}

/// Deterministic bounded shuffle: each arrival's sort key is its timestamp
/// plus a jitter in `[0, bound]`, ties broken by original index. Delivered
/// lateness never exceeds `bound` (an earlier-keyed arrival's timestamp is
/// at most `key ≤ ts + bound` ahead), so an engine with disorder bound
/// `bound` must accept every arrival.
fn shuffle_within(trace: &[(usize, Vec<Value>, u64)], bound_micros: u64) -> Vec<(usize, Vec<Value>, u64)> {
    let mut keyed: Vec<(u64, usize, (usize, Vec<Value>, u64))> = trace
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let jitter = (i as u64).wrapping_mul(0x9E37_79B9) % (bound_micros + 1);
            (a.2 + jitter, i, a.clone())
        })
        .collect();
    keyed.sort_by_key(|&(key, idx, _)| (key, idx));
    keyed.into_iter().map(|(_, _, a)| a).collect()
}

/// Satellite 1: a single regressed timestamp beyond the bound is dropped
/// and counted — never a panic — and the run's output is identical to one
/// that never saw the late arrival, even though the straggler carried a
/// joinable value.
#[test]
fn regressed_timestamp_beyond_the_bound_is_dropped_counted_and_inert() {
    let clean = chain3_trace(90);
    // Regress to 1s after a 45s high-water mark: 44s late against a 5s
    // bound, and value-matched so a wrongly admitted tuple would join.
    let mut polluted = clean.clone();
    polluted.push((0, vec![Value(1), Value(1)], 1_000_000));
    let bound = Some(VDur::from_secs(5));
    let (rows_clean, m_clean) = drive(chain3(30), bound, 10_000, &clean);
    let (rows_poll, m_poll) = drive(chain3(30), bound, 10_000, &polluted);
    assert!(m_clean.total_output > 0, "trace must join");
    assert_eq!(m_clean.late_dropped, 0);
    assert_eq!(m_poll.late_dropped, 1, "the straggler is counted");
    assert_eq!(rows_poll, rows_clean, "the straggler must not change the output");
}

/// Satellite 4, accept side: a timestamp exactly equal to the watermark —
/// exactly `K` late against the cross-stream high-water mark — is
/// accepted, on either stream, and still joins its partner.
#[test]
fn arrival_exactly_k_late_sits_on_the_watermark_and_is_accepted() {
    let k_secs = 10;
    for late_stream in [0usize, 1usize] {
        let mut engine = EngineBuilder::new(pair_query(100))
            .policy(Fifo)
            .capacity_per_window(10_000)
            .disorder_bound(VDur::from_secs(k_secs))
            .build()
            .unwrap();
        let mut sink = CountSink::default();
        // Advance both high-water marks to 50s: watermark = 40s.
        engine.ingest(Arrival::new(StreamId(0), vec![Value(7)], VTime::from_secs(50)), &mut sink);
        engine.ingest(Arrival::new(StreamId(1), vec![Value(9)], VTime::from_secs(50)), &mut sink);
        assert_eq!(engine.watermark(), Some(VTime::from_secs(40)));
        // Exactly K late (ts == watermark): accepted and buffered.
        let outcome = engine.ingest(
            Arrival::new(StreamId(late_stream), vec![Value(3)], VTime::from_secs(40)),
            &mut sink,
        );
        assert!(outcome.stored, "stream {late_stream}: ts == watermark is on time");
        assert_eq!(engine.metrics().late_dropped, 0);
        // Its partner (also exactly on the watermark, other stream) joins:
        // both sit 10s apart from nothing — the window is wide open.
        engine.ingest(
            Arrival::new(StreamId(1 - late_stream), vec![Value(3)], VTime::from_secs(40)),
            &mut sink,
        );
        let mut produced = 0;
        engine.flush(&mut FnSink(|_: &Bindings<'_>| produced += 1));
        assert!(produced >= 1, "stream {late_stream}: boundary arrivals must join");
        assert_eq!(engine.metrics().late_dropped, 0);
    }
}

/// Satellite 4, drop side: one microsecond below the watermark is late —
/// dropped and counted, on either stream.
#[test]
fn arrival_one_micro_below_the_watermark_is_dropped() {
    let k_secs = 10;
    for late_stream in [0usize, 1usize] {
        let mut engine = EngineBuilder::new(pair_query(100))
            .policy(Fifo)
            .capacity_per_window(10_000)
            .disorder_bound(VDur::from_secs(k_secs))
            .build()
            .unwrap();
        let mut sink = CountSink::default();
        engine.ingest(Arrival::new(StreamId(0), vec![Value(7)], VTime::from_secs(50)), &mut sink);
        engine.ingest(Arrival::new(StreamId(1), vec![Value(9)], VTime::from_secs(50)), &mut sink);
        let just_late = VTime::from_micros(VTime::from_secs(40).as_micros() - 1);
        let outcome = engine.ingest(
            Arrival::new(StreamId(late_stream), vec![Value(3)], just_late),
            &mut sink,
        );
        assert!(!outcome.stored, "stream {late_stream}: below the watermark is late");
        assert_eq!(outcome.produced, 0);
        assert_eq!(engine.metrics().late_dropped, 1);
    }
}

/// Until every stream has spoken, the watermark stays pinned at the origin
/// — early one-sided traffic is never late-dropped no matter how old.
#[test]
fn watermark_waits_for_silent_streams() {
    let mut engine = EngineBuilder::new(pair_query(100))
        .policy(Fifo)
        .capacity_per_window(10_000)
        .disorder_bound(VDur::from_secs(1))
        .build()
        .unwrap();
    let mut sink = CountSink::default();
    for i in 0..20u64 {
        engine.ingest(
            Arrival::new(StreamId(0), vec![Value(i)], VTime::from_secs(100 + i)),
            &mut sink,
        );
    }
    assert_eq!(engine.watermark(), Some(VTime::ZERO), "stream 1 is silent");
    assert_eq!(engine.metrics().late_dropped, 0);
    assert_eq!(engine.buffered(), 20, "everything waits for stream 1");
}

/// Tentpole contract (a): `K = 0` on an in-order trace is bit-identical to
/// the trusting engine — same rows, same order, same sequence numbers,
/// zero drops.
#[test]
fn k0_in_order_run_is_bit_identical_to_the_trusting_engine() {
    let trace = chain3_trace(120);
    // Tight capacity so shedding decisions are part of the replayed state.
    for capacity in [10_000usize, 12] {
        let (trusting, m_trust) = drive(chain3(30), None, capacity, &trace);
        let (k0, m_k0) = drive(chain3(30), Some(VDur::from_micros(0)), capacity, &trace);
        assert_eq!(k0, trusting, "capacity {capacity}: emit-order identity");
        assert_eq!(m_k0.total_output, m_trust.total_output);
        assert_eq!(m_k0.shed_window, m_trust.shed_window);
        assert_eq!(m_k0.late_dropped, 0);
    }
    let (_, m) = drive(chain3(30), None, 12, &trace);
    assert!(m.shed_window > 0, "tight run must actually shed");
}

/// Tentpole contract (b): a shuffle whose lateness stays within `K`
/// reproduces the in-order output exactly — rows, order, and seqs — with
/// nothing late-dropped.
#[test]
fn covered_disorder_reproduces_the_in_order_run() {
    let trace = chain3_trace(120);
    let bound = VDur::from_secs(2);
    let shuffled = shuffle_within(&trace, bound.as_micros());
    assert_ne!(
        shuffled.iter().map(|a| a.2).collect::<Vec<_>>(),
        trace.iter().map(|a| a.2).collect::<Vec<_>>(),
        "the shuffle must actually disorder the trace"
    );
    for capacity in [10_000usize, 12] {
        let (in_order, m_base) = drive(chain3(30), None, capacity, &trace);
        let (recovered, m_rec) = drive(chain3(30), Some(bound), capacity, &shuffled);
        assert!(m_base.total_output > 0);
        assert_eq!(recovered, in_order, "capacity {capacity}: disorder must be invisible");
        assert_eq!(m_rec.late_dropped, 0, "lateness was covered by the bound");
    }
}

/// Satellite 2: the sharded coordinator's hot-key fan-out gate is keyed
/// off the watermark, so a promotion instant crossed under injected
/// lateness still yields oracle-exact output at full memory.
#[test]
fn sharded_promotion_under_injected_lateness_matches_the_oracle() {
    // A hot key (7) at ~50% share forces a promotion at the 24-arrival
    // decision cadence; background keys keep the other shards busy.
    let trace: Vec<(usize, Vec<Value>, u64)> = (0..240u64)
        .map(|i| {
            let key = if i % 4 < 2 { 7 } else { 10 + (i % 5) };
            ((i % 2) as usize, vec![Value(key)], i * 250_000)
        })
        .collect();
    let bound = VDur::from_secs(1);
    let shuffled = shuffle_within(&trace, bound.as_micros());

    let query = pair_query(60);
    let n = query.n_streams();
    let mut oracle = ExactJoin::new(query.clone());
    let mut oracle_rows: Vec<Vec<u64>> = Vec::new();
    for (stream, vals, at) in &trace {
        oracle.process_each(StreamId(*stream), vals.clone(), VTime::from_micros(*at), |b| {
            oracle_rows.push(row(b, n))
        });
    }
    oracle_rows.sort();
    assert!(!oracle_rows.is_empty(), "the skewed trace must join");

    let engine = EngineBuilder::new(query)
        .policy(Fifo)
        .capacity_per_window(trace.len() * 4)
        .seed(5)
        .disorder_bound(bound)
        .shard_config(ShardConfig {
            shards: 4,
            channel_capacity: 8,
            batch_size: 4,
            backpressure: Backpressure::Block,
            collect_rows: true,
            route_only: false,
            hot_keys: HotKeyConfig {
                enabled: true,
                capacity: 8,
                tracker_capacity: 64,
                epoch_arrivals: 24,
                promote_permille: 200,
                demote_permille: 100,
            },
            broadcast: false,
            batch_ingest: true,
        })
        .build_sharded()
        .unwrap();
    let mut engine = engine;
    for (stream, vals, at) in &shuffled {
        engine.ingest(Arrival::new(StreamId(*stream), vals.clone(), VTime::from_micros(*at)));
    }
    let report = engine.finish().unwrap();
    assert!(report.hot_promoted > 0, "the hot key must actually promote");
    assert_eq!(report.combined.metrics.late_dropped, 0);
    let mut rows: Vec<Vec<u64>> = report
        .rows
        .expect("collect_rows was set")
        .iter()
        .map(|result| {
            let mut r = Vec::new();
            for t in result {
                r.push(t.seq.0);
                r.extend(t.values.iter().map(|v| v.0));
            }
            r
        })
        .collect();
    rows.sort();
    assert_eq!(rows, oracle_rows, "promotion + lateness must stay oracle-exact");
}
