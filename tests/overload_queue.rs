//! Integration: the queueing model under overload (paper §2 and Figure 6).

use mstream_core::prelude::*;

fn chain3(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

fn trace() -> Trace {
    let mut config = RegionsConfig::with_z_intra(1.6, 2.0);
    config.tuples_per_relation = 1_500;
    config.seed = 21;
    RegionsGenerator::new(config).unwrap().generate()
}

fn overload_opts(factor: f64, queue: usize) -> RunOptions {
    RunOptions {
        sim: SimConfig {
            arrival_rate: 10.0,
            service_rate: Some(10.0 / factor),
            queue_capacity: queue,
        },
        ..Default::default()
    }
}

fn run_policy(name: &str, opts: &RunOptions) -> RunReport {
    let mut engine = EngineBuilder::new(chain3(100))
        .boxed_policy(parse_policy(name).unwrap())
        .capacity_per_window(200)
        .seed(4)
        .build()
        .unwrap();
    run_trace(&mut engine, &trace(), opts)
}

/// Under k = 5l the queue saturates and sheds roughly 4/5 of arrivals;
/// every arrival is either processed or queue-shed.
#[test]
fn overload_sheds_the_expected_fraction() {
    let opts = overload_opts(5.0, 100);
    for name in ["MSketch", "Random", "FIFO"] {
        let report = run_policy(name, &opts);
        let total = trace().len() as u64;
        assert_eq!(
            report.metrics.processed + report.metrics.shed_queue,
            total,
            "{name}: conservation"
        );
        let processed_frac = report.metrics.processed as f64 / total as f64;
        assert!(
            (0.18..=0.30).contains(&processed_frac),
            "{name}: ~1/5 of arrivals can be serviced, got {processed_frac:.2}"
        );
    }
}

/// Semantic queue shedding retains join-relevant tuples: MSketch's output
/// under overload beats FIFO's drop-oldest by a wide margin (Figure 6).
#[test]
fn semantic_queue_shedding_beats_drop_oldest() {
    let opts = overload_opts(5.0, 100);
    let msketch = run_policy("MSketch", &opts).total_output();
    let fifo = run_policy("FIFO", &opts).total_output();
    assert!(
        msketch > 2 * fifo,
        "MSketch ({msketch}) must clearly beat FIFO ({fifo}) under overload"
    );
}

/// A faster server (no overload) never sheds from the queue, regardless of
/// queue size.
#[test]
fn no_queue_shedding_without_overload() {
    let opts = overload_opts(0.5, 4); // service twice the arrival rate
    let report = run_policy("MSketch", &opts);
    assert_eq!(report.metrics.shed_queue, 0);
    assert_eq!(report.metrics.processed, trace().len() as u64);
}

/// Queue capacity matters under overload: a larger queue lets the server
/// keep working through bursts, processing at least as many tuples.
#[test]
fn larger_queue_never_processes_fewer() {
    let small = run_policy("MSketch", &overload_opts(5.0, 10));
    let large = run_policy("MSketch", &overload_opts(5.0, 500));
    assert!(large.metrics.processed >= small.metrics.processed);
}

/// The run's virtual clock keeps advancing while the backlog drains: the
/// last processed tuple finishes after the last arrival.
#[test]
fn backlog_drains_after_arrivals_end() {
    let report = run_policy("Random", &overload_opts(5.0, 100));
    let last_arrival_secs = trace().len() as f64 / 10.0;
    assert!(report.end_time.as_secs_f64() >= last_arrival_secs);
}
