//! The unified ingest API.
//!
//! One regression contract: every way of feeding the engine — the
//! `ingest`/`ingest_tuple` entry points through any sink — must produce
//! identical results and identical metrics on the same trace.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn keyed3() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(60),
    )
    .unwrap()
}

fn engine(capacity: usize, seed: u64) -> ShedJoinEngine {
    EngineBuilder::new(keyed3())
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(seed)
        .build()
        .unwrap()
}

/// Metrics with the wall-clock timing counters zeroed — everything else
/// is deterministic and must match exactly across equivalent runs.
fn det(m: &EngineMetrics) -> EngineMetrics {
    EngineMetrics {
        sketch_observe_ns: 0,
        priority_rebuild_ns: 0,
        score_ns: 0,
        ..m.clone()
    }
}

fn trace(n: usize) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|i| {
            Arrival::new(
                StreamId(rng.gen_range(0..3)),
                vec![Value(rng.gen_range(0..5)), Value(rng.gen_range(0..5))],
                VTime::from_secs(i as u64 / 5),
            )
        })
        .collect()
}

/// The three sinks and the outcome counter all agree on every arrival.
#[test]
fn sinks_agree_with_outcome_counts() {
    let mut counted = engine(16, 3);
    let mut collected = engine(16, 3);
    let mut closured = engine(16, 3);
    for arrival in trace(500) {
        let mut count = CountSink::default();
        let mut vec = VecSink::default();
        let mut calls = 0u64;
        let a = counted.ingest(arrival.clone(), &mut count);
        let b = collected.ingest(arrival.clone(), &mut vec);
        let c = closured.ingest(arrival, &mut FnSink(|_b: &Bindings<'_>| calls += 1));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(count.produced, a.produced);
        assert_eq!(vec.rows.len() as u64, a.produced);
        assert_eq!(calls, a.produced);
    }
    assert_eq!(det(counted.metrics()), det(collected.metrics()));
    assert_eq!(det(counted.metrics()), det(closured.metrics()));
    assert!(counted.metrics().total_output > 0);
    assert!(counted.metrics().shed_window > 0, "capacity 16 must shed");
}

/// The tuple-level entry point (`mint` + `ingest_tuple`) is equivalent to
/// `ingest`, arrival for arrival — including the minted sequence numbers.
#[test]
fn tuple_level_ingest_matches_arrival_level() {
    let mut minted = engine(16, 3);
    let mut direct = engine(16, 3);
    for arrival in trace(300) {
        let t = minted.mint(arrival.clone());
        let got_minted = minted.ingest_tuple(t.clone(), arrival.ts, &mut CountSink::default());
        let got_direct = direct.ingest(arrival, &mut CountSink::default());
        assert_eq!(got_minted, got_direct);
        let t_direct = direct.mint(Arrival::new(t.stream, t.values.clone(), t.ts));
        assert_eq!(
            t_direct.seq,
            SeqNo(t.seq.0 + 1),
            "both paths advance the same seq counter"
        );
        // The probe mint advanced `direct`'s counter; re-sync by minting
        // a throwaway on the other engine too.
        minted.mint(Arrival::new(t.stream, t.values, t.ts));
    }
    assert_eq!(det(minted.metrics()), det(direct.metrics()));
}

/// `IngestOutcome` reports residency truthfully: at huge capacity
/// everything is stored and nothing shed; at capacity 1 per window the
/// shed/stored accounting matches the metrics counter.
#[test]
fn outcome_stored_and_shed_are_consistent() {
    let mut roomy = engine(100_000, 1);
    for arrival in trace(200) {
        let o = roomy.ingest(arrival, &mut CountSink::default());
        assert!(o.stored);
        assert_eq!(o.shed, 0);
    }
    assert_eq!(roomy.metrics().shed_window, 0);

    let mut tight = engine(4, 1);
    let mut shed_total = 0u64;
    for arrival in trace(400) {
        shed_total += tight.ingest(arrival, &mut CountSink::default()).shed;
    }
    assert_eq!(shed_total, tight.metrics().shed_window);
    assert!(shed_total > 0);
}

/// `VecSink` rows come back in stream order with the bound tuples.
#[test]
fn vecsink_rows_are_stream_ordered() {
    let mut e = engine(1_000, 1);
    let mut sink = VecSink::default();
    e.ingest(
        Arrival::new(StreamId(1), vec![Value(3), Value(4)], VTime::ZERO),
        &mut sink,
    );
    e.ingest(
        Arrival::new(StreamId(2), vec![Value(4), Value(0)], VTime::ZERO),
        &mut sink,
    );
    e.ingest(
        Arrival::new(StreamId(0), vec![Value(3), Value(9)], VTime::ZERO),
        &mut sink,
    );
    assert_eq!(sink.rows.len(), 1, "one 3-way result");
    let row = &sink.rows[0];
    assert_eq!(row.len(), 3);
    for (k, t) in row.iter().enumerate() {
        assert_eq!(t.stream, StreamId(k), "row[{k}] holds stream {k}'s tuple");
    }
    assert_eq!(row[0].values, vec![Value(3), Value(9)]);
    assert_eq!(row[1].values, vec![Value(3), Value(4)]);
    assert_eq!(row[2].values, vec![Value(4), Value(0)]);
}
