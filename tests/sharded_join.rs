//! Differential acceptance tests for [`ShardedJoinEngine`].
//!
//! The contract under test (DESIGN.md "Sharded execution"):
//!
//! * On a partitionable query at full memory, the merged S-shard output is
//!   identical to the single-engine output — same result rows, same
//!   sequence numbers — for any S.
//! * Under reduced memory, the sharded output is a sub-multiset of the
//!   full-memory result (shedding only removes rows, never invents them).
//! * A non-partitionable query with broadcast mode disabled degrades to 1
//!   shard with the reason surfaced, and then behaves bit-identically to
//!   the single engine; with broadcast mode (the default) it runs at the
//!   requested shard count and still matches the oracle at full memory.
//! * Hot-key splitting (replicated build sides + round-robin probes)
//!   preserves the full-memory oracle equality and the sub-multiset
//!   property under shedding, and replays deterministically.
//! * Tuple-count windows stay exact across shards (the tick broadcast).
//! * Same seed ⇒ same run, shard count and shedding notwithstanding.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All predicates on attribute 0 through one equivalence class — the
/// canonical key-partitionable shape.
fn keyed3(window: WindowSpec) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")],
        window,
    )
    .unwrap()
}

/// The paper's chain: R2 joins through two different attributes, so no
/// single partition key exists.
fn chain3_windowed(window: WindowSpec) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        window,
    )
    .unwrap()
}

fn chain3() -> JoinQuery {
    chain3_windowed(WindowSpec::secs(40))
}

/// Metrics with the wall-clock timing counters zeroed — everything else
/// is deterministic and must match exactly across equivalent runs.
fn det(m: &EngineMetrics) -> EngineMetrics {
    EngineMetrics {
        sketch_observe_ns: 0,
        priority_rebuild_ns: 0,
        score_ns: 0,
        ..m.clone()
    }
}

fn trace(n: usize, key_domain: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            Arrival::new(
                StreamId(rng.gen_range(0..3)),
                vec![
                    Value(rng.gen_range(0..key_domain)),
                    Value(rng.gen_range(0..key_domain)),
                ],
                VTime::from_secs(i as u64 / 4),
            )
        })
        .collect()
}

/// Canonical form of a result set: each row as its per-stream sequence
/// numbers (globally minted, so directly comparable across executions).
fn canon(rows: &[Vec<Tuple>]) -> Vec<Vec<SeqNo>> {
    let mut out: Vec<Vec<SeqNo>> = rows
        .iter()
        .map(|row| row.iter().map(|t| t.seq).collect())
        .collect();
    out.sort();
    out
}

/// Multiset inclusion over two canonicalized (sorted) row lists.
fn is_sub_multiset(sub: &[Vec<SeqNo>], sup: &[Vec<SeqNo>]) -> bool {
    let mut j = 0;
    for row in sub {
        while j < sup.len() && sup[j] < *row {
            j += 1;
        }
        if j == sup.len() || sup[j] != *row {
            return false;
        }
        j += 1;
    }
    true
}

fn single_engine_rows(query: JoinQuery, capacity: usize, arrivals: &[Arrival]) -> (Vec<Vec<SeqNo>>, EngineMetrics) {
    let mut engine = EngineBuilder::new(query)
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5)
        .build()
        .unwrap();
    let mut sink = VecSink::default();
    for arrival in arrivals {
        engine.ingest(arrival.clone(), &mut sink);
    }
    (canon(&sink.rows), engine.metrics().clone())
}

fn sharded_rows_with(
    query: JoinQuery,
    capacity: usize,
    arrivals: &[Arrival],
    config: ShardConfig,
) -> ShardedRunReport {
    let mut engine = EngineBuilder::new(query)
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5)
        .shard_config(config)
        .build_sharded()
        .unwrap();
    for arrival in arrivals {
        engine.ingest(arrival.clone());
    }
    engine.finish().unwrap()
}

fn sharded_rows(
    query: JoinQuery,
    shards: usize,
    capacity: usize,
    arrivals: &[Arrival],
) -> ShardedRunReport {
    sharded_rows_with(
        query,
        capacity,
        arrivals,
        ShardConfig {
            shards,
            channel_capacity: 4,
            batch_size: 7, // deliberately not a divisor of the trace length
            backpressure: Backpressure::Block,
            collect_rows: true,
            ..ShardConfig::default()
        },
    )
}

/// At full memory nothing is shed, so partitioning is lossless: the merged
/// rows equal the single-engine rows exactly for S ∈ {1, 2, 4}.
#[test]
fn full_memory_sharded_output_matches_single_engine() {
    let arrivals = trace(900, 12);
    let (oracle, oracle_metrics) =
        single_engine_rows(keyed3(WindowSpec::secs(25)), 100_000, &arrivals);
    assert!(!oracle.is_empty(), "trace must produce joins");
    for shards in [1, 2, 4] {
        let report = sharded_rows(keyed3(WindowSpec::secs(25)), shards, 100_000, &arrivals);
        assert_eq!(report.combined.shards, shards);
        assert_eq!(report.combined.degraded, None);
        assert_eq!(report.shed_channel, 0, "Block backpressure never drops");
        let rows = canon(report.rows.as_ref().unwrap());
        assert_eq!(rows, oracle, "S={shards} row set diverged from oracle");
        assert_eq!(
            report.combined.metrics.total_output, oracle_metrics.total_output,
            "S={shards}"
        );
        assert_eq!(report.combined.metrics.shed_window, 0, "S={shards}");
        assert_eq!(report.per_shard.len(), shards);
        if shards > 1 {
            assert!(
                report.per_shard.iter().filter(|m| m.processed > 0).count() > 1,
                "hash routing must actually spread the 12-key domain"
            );
        }
    }
}

/// Under reduced memory each shard sheds within its own partition, so the
/// merged result can only lose rows relative to the full-memory oracle.
#[test]
fn reduced_memory_sharded_output_is_sub_multiset_of_oracle() {
    let arrivals = trace(900, 12);
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::secs(25)), 100_000, &arrivals);
    for shards in [2, 4] {
        let report = sharded_rows(keyed3(WindowSpec::secs(25)), shards, 32, &arrivals);
        assert!(
            report.combined.metrics.shed_window > 0,
            "capacity 32/{shards} must shed on this trace"
        );
        let rows = canon(report.rows.as_ref().unwrap());
        assert!(rows.len() < oracle.len(), "shedding must cost some rows");
        assert!(
            is_sub_multiset(&rows, &oracle),
            "S={shards}: shed run emitted a row the oracle never produced"
        );
    }
}

/// The chain query joins R2 through two different attributes: with
/// broadcast mode switched off, a 4-shard request degrades to 1 worker,
/// says why, and — because a 1-shard run keeps the master seed — matches
/// the single engine bit for bit even while shedding.
#[test]
fn non_partitionable_query_degrades_with_reason_and_stays_exact() {
    let arrivals = trace(700, 6);
    let mut engine = EngineBuilder::new(chain3())
        .policy(MSketch)
        .capacity_per_window(24)
        .seed(5)
        .shard_config(ShardConfig {
            shards: 4,
            collect_rows: true,
            broadcast: false,
            ..ShardConfig::default()
        })
        .build_sharded()
        .unwrap();
    assert_eq!(engine.shards(), 1);
    let reason = engine.degraded().expect("chain query must degrade").to_owned();
    assert!(!reason.is_empty());
    for arrival in &arrivals {
        engine.ingest(arrival.clone());
    }
    let report = engine.finish().unwrap();
    assert_eq!(report.combined.shards, 1);
    assert_eq!(report.combined.degraded.as_deref(), Some(reason.as_str()));

    let (oracle, oracle_metrics) = single_engine_rows(chain3(), 24, &arrivals);
    assert!(oracle_metrics.shed_window > 0, "this capacity must shed");
    assert_eq!(canon(report.rows.as_ref().unwrap()), oracle);
    assert_eq!(det(&report.combined.metrics), det(&oracle_metrics));
}

/// Tuple-count windows expire by arrivals-seen on the stream; the tick
/// broadcast keeps every shard's count exact, so a multi-shard run still
/// matches the single engine at full memory.
#[test]
fn tuple_windows_match_oracle_across_shards() {
    let arrivals = trace(600, 8);
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals);
    assert!(!oracle.is_empty(), "trace must produce joins");
    for shards in [2, 4] {
        let report = sharded_rows(keyed3(WindowSpec::Tuples(15)), shards, 100_000, &arrivals);
        let rows = canon(report.rows.as_ref().unwrap());
        assert_eq!(rows, oracle, "S={shards}: tuple-window expiry drifted");
    }
}

/// Deep tick coalescing — a large batch size lets many foreign arrivals
/// collapse into one [`Item::Ticks`] summary before the next home tuple —
/// must be observationally identical to per-arrival tick delivery: ticks
/// only advance a stream's arrivals-seen counter, and expiry is evaluated
/// against that counter when the next tuple is stored, so summing the
/// advances commutes with interleaving them.
#[test]
fn coalesced_tick_summaries_match_per_arrival_semantics() {
    let arrivals = trace(600, 8);
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals);
    assert!(!oracle.is_empty(), "trace must produce joins");
    for shards in [2, 4] {
        let report = sharded_rows_with(
            keyed3(WindowSpec::Tuples(15)),
            100_000,
            &arrivals,
            ShardConfig {
                shards,
                channel_capacity: 4,
                batch_size: 64, // deep coalescing: many ticks per summary
                backpressure: Backpressure::Block,
                collect_rows: true,
                ..ShardConfig::default()
            },
        );
        let rows = canon(report.rows.as_ref().unwrap());
        assert_eq!(rows, oracle, "S={shards}: coalesced ticks drifted");
    }
}

/// A 1-shard run keeps the master seed, so it must match the single
/// engine bit for bit — rows, sequence numbers, and every deterministic
/// counter — even while actively shedding with `Row`-backed tuples.
#[test]
fn single_shard_bit_identity_survives_shedding() {
    let arrivals = trace(800, 10);
    let (oracle, oracle_metrics) = single_engine_rows(keyed3(WindowSpec::secs(25)), 32, &arrivals);
    assert!(oracle_metrics.shed_window > 0, "capacity 32 must shed");
    let report = sharded_rows(keyed3(WindowSpec::secs(25)), 1, 32, &arrivals);
    assert_eq!(canon(report.rows.as_ref().unwrap()), oracle);
    assert_eq!(det(&report.combined.metrics), det(&oracle_metrics));
}

/// Capacity-1 channels force maximum contention on the buffer-recycling
/// protocol: every send blocks until the worker drains and returns the
/// previous batch. The output must still match the oracle exactly and
/// replay identically.
#[test]
fn buffer_recycling_survives_capacity_one_stress() {
    let arrivals = trace(600, 8);
    let stress = ShardConfig {
        shards: 4,
        channel_capacity: 1,
        batch_size: 1, // one item per batch: maximum recycling churn
        backpressure: Backpressure::Block,
        collect_rows: true,
        ..ShardConfig::default()
    };
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals);
    let a = sharded_rows_with(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals, stress.clone());
    assert_eq!(canon(a.rows.as_ref().unwrap()), oracle);
    let b = sharded_rows_with(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals, stress);
    assert_eq!(
        canon(a.rows.as_ref().unwrap()),
        canon(b.rows.as_ref().unwrap())
    );
    assert_eq!(det(&a.combined.metrics), det(&b.combined.metrics));
}

/// Under `Backpressure::Shed` with a starved channel, every arrival is
/// accounted for — processed by some worker or counted as channel-shed —
/// and the emitted rows are still a sub-multiset of the oracle (rejected
/// tick summaries are re-queued, never dropped, so expiry stays exact for
/// the tuples that do get through).
#[test]
fn shed_backpressure_accounts_every_arrival() {
    let arrivals = trace(600, 8);
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::Tuples(15)), 100_000, &arrivals);
    let report = sharded_rows_with(
        keyed3(WindowSpec::Tuples(15)),
        100_000,
        &arrivals,
        ShardConfig {
            shards: 4,
            channel_capacity: 1,
            batch_size: 1,
            backpressure: Backpressure::Shed,
            collect_rows: true,
            ..ShardConfig::default()
        },
    );
    assert_eq!(
        report.combined.metrics.processed + report.shed_channel,
        arrivals.len() as u64,
        "every arrival is processed or counted as channel-shed"
    );
    let rows = canon(report.rows.as_ref().unwrap());
    assert!(
        is_sub_multiset(&rows, &oracle),
        "channel shedding emitted a row the oracle never produced"
    );
}

/// Sharded runs are a pure function of (query, config, trace): the same
/// seed replays to the same rows and counters, including under shedding.
#[test]
fn same_seed_replays_identically() {
    let arrivals = trace(800, 10);
    let a = sharded_rows(keyed3(WindowSpec::secs(25)), 4, 32, &arrivals);
    let b = sharded_rows(keyed3(WindowSpec::secs(25)), 4, 32, &arrivals);
    assert!(a.combined.metrics.shed_window > 0, "must exercise shedding");
    assert_eq!(det(&a.combined.metrics), det(&b.combined.metrics));
    assert_eq!(
        a.per_shard.iter().map(det).collect::<Vec<_>>(),
        b.per_shard.iter().map(det).collect::<Vec<_>>()
    );
    assert_eq!(
        canon(a.rows.as_ref().unwrap()),
        canon(b.rows.as_ref().unwrap())
    );
}

/// A deliberately skewed trace: key 0 carries ~60% of the arrivals, the
/// rest spread over the remaining domain.
fn skewed_trace(n: usize, key_domain: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n)
        .map(|i| {
            let key = if rng.gen_bool(0.6) {
                0
            } else {
                rng.gen_range(1..key_domain)
            };
            Arrival::new(
                StreamId(rng.gen_range(0..3)),
                vec![Value(key), Value(rng.gen_range(0..key_domain))],
                VTime::from_secs(i as u64 / 4),
            )
        })
        .collect()
}

/// A hot-key config aggressive enough to promote on a few-hundred-arrival
/// test trace (the library default epoch of 2048 arrivals never fires
/// here, by design — short traces shouldn't churn the hot set).
fn aggressive_hot() -> HotKeyConfig {
    HotKeyConfig {
        enabled: true,
        capacity: 8,
        tracker_capacity: 64,
        epoch_arrivals: 64,
        promote_permille: 200,
        demote_permille: 100,
    }
}

fn skewed_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        channel_capacity: 4,
        batch_size: 7,
        backpressure: Backpressure::Block,
        collect_rows: true,
        hot_keys: aggressive_hot(),
        ..ShardConfig::default()
    }
}

/// Hot-key splitting replicates the build side and round-robins the probe
/// side, but at full memory the merged output must still equal the
/// single-engine oracle exactly — the fan-out gate defers round-robin
/// probing until every pre-promotion tuple of the key has expired
/// everywhere. Exercised for both window kinds (the two gate conditions).
#[test]
fn hot_key_split_matches_oracle_at_full_memory() {
    for window in [WindowSpec::secs(25), WindowSpec::Tuples(15)] {
        let arrivals = skewed_trace(900, 12);
        let (oracle, oracle_metrics) = single_engine_rows(keyed3(window), 100_000, &arrivals);
        assert!(!oracle.is_empty(), "trace must produce joins");
        for shards in [2, 4, 8] {
            let report =
                sharded_rows_with(keyed3(window), 100_000, &arrivals, skewed_config(shards));
            assert!(
                report.hot_promoted > 0,
                "S={shards} {window:?}: the 60% key must be detected"
            );
            assert!(
                report.combined.metrics.replicated > 0,
                "S={shards} {window:?}: hot arrivals must replicate"
            );
            assert_eq!(
                report.combined.metrics.processed,
                arrivals.len() as u64,
                "exactly one FULL delivery per arrival"
            );
            let rows = canon(report.rows.as_ref().unwrap());
            assert_eq!(
                rows, oracle,
                "S={shards} {window:?}: hot-key split diverged from oracle"
            );
            assert_eq!(
                report.combined.metrics.total_output,
                oracle_metrics.total_output
            );
        }
    }
}

/// Round-robin probe placement must actually engage: once the gate opens,
/// the hot key's probe work spreads across shards instead of serializing
/// on its hash home.
#[test]
fn hot_key_split_spreads_probe_work() {
    let arrivals = skewed_trace(900, 12);
    let report = sharded_rows_with(
        keyed3(WindowSpec::Tuples(15)),
        100_000,
        &arrivals,
        skewed_config(4),
    );
    assert!(report.hot_promoted > 0);
    let max = *report.routed.iter().max().unwrap();
    let total: u64 = report.routed.iter().sum();
    assert_eq!(total, arrivals.len() as u64, "one FULL delivery each");
    // Without splitting, the 60% key alone pins >60% of deliveries to one
    // shard; with round-robin the maximum shard share must fall well
    // below that.
    assert!(
        (max as f64) < 0.45 * total as f64,
        "probe work still concentrated: max shard got {max} of {total}"
    );
}

/// Under reduced memory with hot keys active, shards shed within their
/// (now replicated) partitions; the merged output must stay a
/// sub-multiset of the full-memory oracle, and replays must be identical.
#[test]
fn hot_key_split_sheds_as_sub_multiset_and_replays() {
    let arrivals = skewed_trace(900, 12);
    let (oracle, _) = single_engine_rows(keyed3(WindowSpec::secs(25)), 100_000, &arrivals);
    let a = sharded_rows_with(keyed3(WindowSpec::secs(25)), 48, &arrivals, skewed_config(4));
    assert!(a.hot_promoted > 0, "skew must be detected");
    assert!(
        a.combined.metrics.shed_window > 0,
        "capacity 48/4 must shed on this trace"
    );
    let rows = canon(a.rows.as_ref().unwrap());
    assert!(
        is_sub_multiset(&rows, &oracle),
        "hot-key shedding emitted a row the oracle never produced"
    );
    let b = sharded_rows_with(keyed3(WindowSpec::secs(25)), 48, &arrivals, skewed_config(4));
    assert_eq!(rows, canon(b.rows.as_ref().unwrap()));
    assert_eq!(det(&a.combined.metrics), det(&b.combined.metrics));
    assert_eq!(a.routed, b.routed, "routing must replay identically");
}

/// Broadcast mode: the chain query (not key-partitionable) runs at the
/// requested shard count with no degrade reason, and at full memory the
/// merged output equals the single-engine oracle — every result
/// combination contains exactly one dominant-stream tuple, resident on
/// exactly one shard. Exercised with time and tuple windows (the latter
/// drives the dominant-stream tick path).
#[test]
fn broadcast_mode_matches_oracle_at_full_memory() {
    for window in [WindowSpec::secs(40), WindowSpec::Tuples(20)] {
        let arrivals = trace(700, 6);
        let (oracle, oracle_metrics) =
            single_engine_rows(chain3_windowed(window), 100_000, &arrivals);
        assert!(!oracle.is_empty(), "trace must produce joins");
        for shards in [2, 4] {
            let report = sharded_rows_with(
                chain3_windowed(window),
                100_000,
                &arrivals,
                ShardConfig {
                    shards,
                    channel_capacity: 4,
                    batch_size: 7,
                    backpressure: Backpressure::Block,
                    collect_rows: true,
                    ..ShardConfig::default()
                },
            );
            assert_eq!(report.combined.shards, shards, "broadcast mode runs wide");
            assert_eq!(report.combined.degraded, None);
            assert!(report.broadcast, "report must flag broadcast mode");
            assert!(
                report.combined.metrics.replicated > 0,
                "broadcast streams must replicate"
            );
            assert_eq!(
                report.combined.metrics.processed,
                arrivals.len() as u64,
                "exactly one FULL delivery per arrival"
            );
            let rows = canon(report.rows.as_ref().unwrap());
            assert_eq!(
                rows, oracle,
                "S={shards} {window:?}: broadcast output diverged from oracle"
            );
            assert_eq!(
                report.combined.metrics.total_output,
                oracle_metrics.total_output
            );
        }
    }
}

/// Broadcast-mode shedding and replay: reduced memory stays a
/// sub-multiset of the oracle, every arrival is accounted once, and the
/// same seed replays identically.
#[test]
fn broadcast_mode_sheds_as_sub_multiset_and_replays() {
    let arrivals = trace(700, 6);
    let (oracle, _) = single_engine_rows(chain3(), 100_000, &arrivals);
    let config = ShardConfig {
        shards: 4,
        channel_capacity: 4,
        batch_size: 7,
        backpressure: Backpressure::Block,
        collect_rows: true,
        ..ShardConfig::default()
    };
    let a = sharded_rows_with(chain3(), 24, &arrivals, config.clone());
    assert!(a.broadcast);
    assert!(
        a.combined.metrics.shed_window > 0,
        "capacity 24 must shed on this trace"
    );
    assert_eq!(a.combined.metrics.processed, arrivals.len() as u64);
    let rows = canon(a.rows.as_ref().unwrap());
    assert!(
        is_sub_multiset(&rows, &oracle),
        "broadcast shedding emitted a row the oracle never produced"
    );
    let b = sharded_rows_with(chain3(), 24, &arrivals, config);
    assert_eq!(rows, canon(b.rows.as_ref().unwrap()));
    assert_eq!(det(&a.combined.metrics), det(&b.combined.metrics));
}
