//! Integration: random-sampling shedding quality (paper §3.2 / Figure 7) —
//! the shed join's output must support accurate windowed aggregates.

use mstream_core::prelude::*;

fn census_query(window: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("Oct03", &["Age", "Income", "Education"]));
    c.add_stream(StreamSchema::new("Apr04", &["Age", "Income", "Education"]));
    c.add_stream(StreamSchema::new("Oct04", &["Age", "Income", "Education"]));
    JoinQuery::from_names(
        c,
        &[
            ("Oct03.Age", "Apr04.Age"),
            ("Apr04.Education", "Oct04.Education"),
        ],
        WindowSpec::secs(window),
    )
    .unwrap()
}

fn census_trace() -> Trace {
    CensusGenerator::new(CensusConfig {
        tuples_per_month: 1_000,
        ..Default::default()
    })
    .unwrap()
    .generate()
}

fn agg_opts(window: u64) -> RunOptions {
    RunOptions {
        agg_attr: Some((StreamId(1), 1)), // Apr04.Income
        agg_bucket: VDur::from_secs(window),
        ..Default::default()
    }
}

/// The exact reference is expensive; compute it once for all tests.
fn exact_reference() -> &'static mstream_core::RunReport {
    use std::sync::OnceLock;
    static EXACT: OnceLock<mstream_core::RunReport> = OnceLock::new();
    EXACT.get_or_init(|| {
        let window = 150;
        run_exact_trace(&census_query(window), &census_trace(), &agg_opts(window))
    })
}

fn compare(name: &str, capacity: usize) -> (SeriesComparison, u64) {
    let window = 150;
    let query = census_query(window);
    let trace = census_trace();
    let opts = agg_opts(window);
    let exact = exact_reference();
    let mut engine = EngineBuilder::new(query)
        .boxed_policy(parse_policy(name).unwrap())
        .capacity_per_window(capacity)
        .seed(8)
        .build()
        .unwrap();
    let report = run_trace(&mut engine, &trace, &opts);
    (
        SeriesComparison::from_hists(
            exact.agg_values.as_ref().unwrap(),
            report.agg_values.as_ref().unwrap(),
        ),
        report.total_output(),
    )
}

/// The RS sample answers the windowed AVG within a few percent even when
/// memory holds a small fraction of the windows.
#[test]
fn rs_sample_supports_windowed_avg() {
    let (cmp, produced) = compare("MSketch-RS", 40);
    assert!(produced > 0);
    assert!(
        cmp.avg_relative_error < 0.08,
        "windowed AVG error {:.4} too large",
        cmp.avg_relative_error
    );
    assert_eq!(cmp.starved_buckets, 0, "no window may be starved");
}

/// The RS sample's distribution tracks the truth: quartile differences stay
/// below one bracket of the 16-level income domain.
#[test]
fn rs_sample_tracks_quartiles() {
    let (cmp, _) = compare("MSketch-RS", 40);
    assert!(
        cmp.avg_quantile_difference < 1.0,
        "quartile diff {:.3} too large",
        cmp.avg_quantile_difference
    );
}

/// At full memory the "sample" is the exact result: both error metrics are
/// identically zero.
#[test]
fn full_memory_sample_is_exact() {
    let (cmp, _) = compare("MSketch-RS", 100_000);
    assert_eq!(cmp.avg_relative_error, 0.0);
    assert_eq!(cmp.avg_quantile_difference, 0.0);
    assert_eq!(cmp.starved_buckets, 0);
}

/// Comparison metrics are monotone-ish in memory: much more memory should
/// not make the RS sample meaningfully worse.
#[test]
fn more_memory_does_not_hurt_much() {
    let (small, _) = compare("MSketch-RS", 25);
    let (large, _) = compare("MSketch-RS", 250);
    assert!(
        large.avg_relative_error <= small.avg_relative_error + 0.02,
        "large-memory error {:.4} vs small {:.4}",
        large.avg_relative_error,
        small.avg_relative_error
    );
}
