//! Integration: tuple-based windows (paper §4.1) across the whole stack —
//! count-based expiration, per-stream tumbling epochs and shedding.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pair_query(count: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("L", &["k", "v"]));
    c.add_stream(StreamSchema::new("R", &["k", "v"]));
    JoinQuery::from_names(c, &[("L.k", "R.k")], WindowSpec::Tuples(count)).unwrap()
}

fn random_trace(seed: u64, n: usize, domain: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for _ in 0..n {
        trace.push(
            StreamId(rng.gen_range(0..2)),
            vec![Value(rng.gen_range(0..domain)), Value(rng.gen_range(0..100))],
        );
    }
    trace
}

/// Brute-force reference for a binary tuple-based window join: a tuple is
/// alive while fewer than `count` newer tuples arrived on its own stream.
fn brute_force(trace: &Trace, count: u64) -> u64 {
    let mut windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 2]; // (key, arrival#)
    let mut arrivals = [0u64; 2];
    let mut total = 0u64;
    for item in &trace.items {
        let s = item.stream.index();
        arrivals[s] += 1;
        // Expire both windows by their own arrival counters.
        for k in 0..2 {
            windows[k].retain(|&(_, a)| arrivals[k] - a < count);
        }
        let other = 1 - s;
        let key = item.values[0].raw();
        total += windows[other].iter().filter(|&&(k, _)| k == key).count() as u64;
        windows[s].push((key, arrivals[s]));
    }
    total
}

/// The unshedded engine on tuple windows matches an independent
/// brute-force implementation exactly.
#[test]
fn tuple_window_join_matches_brute_force() {
    for count in [5u64, 20, 64] {
        let trace = random_trace(count, 1200, 7);
        let expected = brute_force(&trace, count);
        let mut engine = EngineBuilder::new(pair_query(count))
            .capacity_per_window(10_000)
            .seed(1)
            .build()
            .unwrap();
        let report = run_trace(&mut engine, &trace, &RunOptions::default());
        assert_eq!(report.total_output(), expected, "count={count}");
        assert_eq!(report.metrics.shed_window, 0);
    }
}

/// Under memory pressure tuple windows shed and respect capacity.
#[test]
fn tuple_windows_shed_under_pressure() {
    let count = 100u64;
    let trace = random_trace(9, 3000, 4);
    let exact = brute_force(&trace, count);
    for name in ["MSketch", "Bjoin", "FIFO"] {
        let mut engine = EngineBuilder::new(pair_query(count))
            .boxed_policy(parse_policy(name).unwrap())
            .capacity_per_window(20)
            .seed(2)
            .build()
            .unwrap();
        let report = run_trace(&mut engine, &trace, &RunOptions::default());
        assert!(report.metrics.shed_window > 0, "{name} must shed");
        assert!(report.total_output() <= exact, "{name} bounded by exact");
        assert!(report.total_output() > 0, "{name} still produces");
        for k in 0..2 {
            assert!(engine.window_len(StreamId(k)).unwrap() <= 20);
        }
    }
}

/// FIFO with capacity >= the window count is also exact: drop-oldest is
/// exactly count-based expiration.
#[test]
fn fifo_at_window_capacity_is_exact() {
    let count = 30u64;
    let trace = random_trace(3, 1000, 5);
    let expected = brute_force(&trace, count);
    let mut engine = EngineBuilder::new(pair_query(count))
        .boxed_policy(parse_policy("FIFO").unwrap())
        .capacity_per_window(count as usize)
        .seed(3)
        .build()
        .unwrap();
    let report = run_trace(&mut engine, &trace, &RunOptions::default());
    assert_eq!(report.total_output(), expected);
}

/// Mixed window kinds are rejected unless an explicit epoch is configured,
/// and accepted with one.
#[test]
fn mixed_windows_need_explicit_epoch() {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("L", &["k"]));
    c.add_stream(StreamSchema::new("R", &["k"]));
    let query = JoinQuery::new(
        c,
        vec![EquiPredicate::new(
            AttrRef::new(StreamId(0), 0),
            AttrRef::new(StreamId(1), 0),
        )],
        vec![WindowSpec::secs(10), WindowSpec::Tuples(50)],
    )
    .unwrap();
    // Sketch-based policy needs an epoch; mixed windows have no default.
    assert!(EngineBuilder::new(query.clone())
        .capacity_per_window(10)
        .build()
        .is_err());
    assert!(EngineBuilder::new(query)
        .capacity_per_window(10)
        .epoch(EpochSpec::Time(VDur::from_secs(10)))
        .build()
        .is_ok());
}
