//! Window-expiration boundary semantics, pinned across layers.
//!
//! Time-based windows expire a tuple once `ts + p <= now` (strict: the
//! tuple is gone *at* the boundary instant); tuple-based windows expire a
//! tuple once `count` newer arrivals have been seen on its stream. The
//! probe path holds no notion of "still in window" of its own — it probes
//! whatever is resident — so the contract both the shedding engine and the
//! exact oracle must honour is: **expire before probing, with the same
//! boundary**. A tuple must never join at the exact instant it expires,
//! and both executors must agree tuple for tuple on boundary-heavy traces.

use mstream_core::prelude::*;

fn chain3(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

fn pair_query(window: WindowSpec) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1"]));
    c.add_stream(StreamSchema::new("R2", &["A1"]));
    JoinQuery::uniform(
        c,
        vec![EquiPredicate::new(
            AttrRef::new(StreamId(0), 0),
            AttrRef::new(StreamId(1), 0),
        )],
        window,
    )
    .unwrap()
}

fn arrive(e: &mut ShedJoinEngine, s: StreamId, vals: Vec<Value>, now: VTime) -> u64 {
    e.ingest(Arrival::new(s, vals, now), &mut CountSink::default())
        .produced
}

fn engine(query: JoinQuery) -> ShedJoinEngine {
    EngineBuilder::new(query)
        .policy(Fifo)
        .capacity_per_window(10_000)
        .build()
        .unwrap()
}

/// Time windows: `ts + p == now` is OUT of the window — the partner that
/// arrives exactly `p` after a tuple does not see it; one microsecond
/// earlier it still does. Engine and oracle agree on both sides.
#[test]
fn time_window_tuple_cannot_join_at_its_expiry_instant() {
    let p_secs = 10;
    for (offset_micros, expect) in [(0u64, 0u64), (1, 1)] {
        let boundary = VTime::from_secs(p_secs).as_micros() - offset_micros;
        let mut eng = engine(pair_query(WindowSpec::secs(p_secs)));
        let mut exact = ExactJoin::new(pair_query(WindowSpec::secs(p_secs)));
        let got_e = {
            arrive(&mut eng, StreamId(0), vec![Value(7)], VTime::ZERO);
            arrive(&mut eng, StreamId(1), vec![Value(7)], VTime::from_micros(boundary))
        };
        let got_x = {
            exact.process(StreamId(0), vec![Value(7)], VTime::ZERO);
            exact.process(StreamId(1), vec![Value(7)], VTime::from_micros(boundary))
        };
        assert_eq!(got_e, expect, "engine at boundary-{offset_micros}µs");
        assert_eq!(got_x, expect, "oracle at boundary-{offset_micros}µs");
        if expect == 0 {
            assert_eq!(eng.window_len(StreamId(0)).unwrap(), 0, "expired at the instant");
            assert_eq!(exact.window_len(StreamId(0)).unwrap(), 0);
        }
    }
}

/// Tuple windows: a `Tuples(c)` window expires a tuple once `c` newer
/// arrivals have been seen on its stream — the probe of the c-th newer
/// arrival (on the *other* stream) still sees it, the first probe after
/// the c-th same-stream arrival does not.
#[test]
fn tuple_window_expires_on_count_boundary_arrival() {
    let c = 3u64;
    let mut eng = engine(pair_query(WindowSpec::Tuples(c)));
    let mut exact = ExactJoin::new(pair_query(WindowSpec::Tuples(c)));
    let mut both = |s: usize, v: u64, what: &str, expect: Option<u64>| {
        let a = arrive(&mut eng, StreamId(s), vec![Value(v)], VTime::ZERO);
        let b = exact.process(StreamId(s), vec![Value(v)], VTime::ZERO);
        if let Some(e) = expect {
            assert_eq!(a, e, "engine: {what}");
            assert_eq!(b, e, "oracle: {what}");
        }
        assert_eq!(a, b, "{what}");
    };
    // Seed the probed tuple, then c-1 same-stream fillers (no shared join
    // value): a partner probe still matches — the seed has seen only c-1
    // newer arrivals.
    both(0, 7, "seed", None);
    for i in 0..c - 1 {
        both(0, 100 + i, "filler", Some(0));
    }
    both(1, 7, "after c-1 newer arrivals the seed still joins", Some(1));
    // One more same-stream arrival reaches the count boundary, so the next
    // partner probe must not see the seed any more.
    both(0, 200, "boundary arrival", Some(0));
    both(1, 7, "after c newer arrivals the seed is expired", Some(0));
}

/// A boundary-heavy trace: every R1 tuple's partner arrives either exactly
/// at, just before, or just after its expiry instant. Engine (unshedded)
/// and oracle must agree arrival by arrival.
#[test]
fn engine_and_oracle_agree_on_boundary_heavy_trace() {
    let p = 20;
    let mut eng = engine(chain3(p));
    let mut exact = ExactJoin::new(chain3(p));
    let p_micros = VDur::from_secs(p).as_micros();
    let mut total = 0u64;
    for i in 0..120u64 {
        let base = i * 500_000; // arrivals every 0.5s
        let (stream, ts) = match i % 4 {
            0 => (0, base),
            1 => (1, base),
            2 => (2, base),
            // Every 4th arrival lands exactly on the expiry instant of the
            // tuple seeded 20s earlier (if any).
            _ => (0, (base - 1_500_000) + p_micros),
        };
        let vals = vec![Value(i % 3), Value(i % 3)];
        let a = arrive(&mut eng, StreamId(stream), vals.clone(), VTime::from_micros(ts));
        let b = exact.process(StreamId(stream), vals, VTime::from_micros(ts));
        assert_eq!(a, b, "arrival {i} at t={ts}µs");
        total += a;
    }
    assert!(total > 0, "boundary trace must still produce joins");
    assert_eq!(eng.metrics().total_output, exact.total_output());
}
