//! Integration: query shapes beyond the paper's 3-way chain — stars,
//! longer chains and cycles — validated against an independent brute-force
//! evaluator. The shedding machinery must be correct for any connected
//! conjunctive equi-join, not just the evaluation query.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One equi-predicate as `((stream, attr), (stream, attr))` index pairs.
type PredSpec = ((usize, usize), (usize, usize));

/// A trace over `n` streams of arity 2 with values in `0..domain`.
fn random_trace(seed: u64, n_streams: usize, n: usize, domain: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for _ in 0..n {
        trace.push(
            StreamId(rng.gen_range(0..n_streams)),
            vec![Value(rng.gen_range(0..domain)), Value(rng.gen_range(0..domain))],
        );
    }
    trace
}

fn catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        c.add_stream(StreamSchema::new(format!("R{i}"), &["A1", "A2"]));
    }
    c
}

/// Brute-force n-way evaluator over arrival history with a time window.
fn brute_force(
    trace: &Trace,
    preds: &[PredSpec],
    n_streams: usize,
    window_secs: u64,
    rate: f64,
) -> u64 {
    let dt = 1.0 / rate;
    // (stream, arrival time, values)
    let arrivals: Vec<(usize, f64, Vec<u64>)> = trace
        .items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            (
                it.stream.index(),
                i as f64 * dt,
                it.values.iter().map(|v| v.raw()).collect(),
            )
        })
        .collect();
    let mut total = 0u64;
    for (i, (s_new, t_new, _)) in arrivals.iter().enumerate() {
        // Live tuples per stream at the probe instant (strict expiry at
        // ts + p <= now), excluding the arriving tuple itself.
        let live: Vec<Vec<&Vec<u64>>> = (0..n_streams)
            .map(|k| {
                arrivals[..i]
                    .iter()
                    .filter(|(s, t, _)| *s == k && t + window_secs as f64 > *t_new + 1e-9)
                    .map(|(_, _, v)| v)
                    .collect()
            })
            .collect();
        // Enumerate combinations with stream s_new pinned to the arrival,
        // pruning with every predicate whose endpoints are already bound.
        let new_values = &arrivals[i].2;
        let mut stack: Vec<Vec<&Vec<u64>>> = vec![vec![]];
        for (k, live_k) in live.iter().enumerate() {
            let candidates: Vec<&Vec<u64>> = if k == *s_new {
                vec![new_values]
            } else {
                live_k.clone()
            };
            let mut next = Vec::new();
            for partial in &stack {
                for cand in &candidates {
                    let consistent = preds.iter().all(|&((ls, la), (rs, ra))| {
                        let value = |s: usize, a: usize| -> Option<u64> {
                            if s < partial.len() {
                                Some(partial[s][a])
                            } else if s == k {
                                Some(cand[a])
                            } else {
                                None
                            }
                        };
                        match (value(ls, la), value(rs, ra)) {
                            (Some(l), Some(r)) => l == r,
                            _ => true, // endpoint not bound yet
                        }
                    });
                    if consistent {
                        let mut combo = partial.clone();
                        combo.push(cand);
                        next.push(combo);
                    }
                }
            }
            stack = next;
        }
        total += stack.len() as u64;
    }
    total
}

fn check_shape(
    name: &str,
    n_streams: usize,
    preds: &[PredSpec],
    seed: u64,
) {
    let window_secs = 20u64;
    let rate = 10.0;
    let pred_refs: Vec<EquiPredicate> = preds
        .iter()
        .map(|&((ls, la), (rs, ra))| {
            EquiPredicate::new(
                AttrRef::new(StreamId(ls), la),
                AttrRef::new(StreamId(rs), ra),
            )
        })
        .collect();
    let query = JoinQuery::uniform(catalog(n_streams), pred_refs, WindowSpec::secs(window_secs))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let trace = random_trace(seed, n_streams, 400, 4);
    let expected = brute_force(&trace, preds, n_streams, window_secs, rate);
    // Unshedded engine must match brute force exactly.
    let mut engine = EngineBuilder::new(query.clone())
        .capacity_per_window(10_000)
        .seed(seed)
        .build()
        .unwrap();
    let opts = RunOptions {
        sim: SimConfig {
            arrival_rate: rate,
            service_rate: None,
            queue_capacity: 10,
        },
        ..Default::default()
    };
    let got = run_trace(&mut engine, &trace, &opts).total_output();
    assert_eq!(got, expected, "{name}: engine vs brute force");
    // And a shedding run stays within the exact bound while still working.
    let mut shed = EngineBuilder::new(query)
        .capacity_per_window(12)
        .seed(seed)
        .build()
        .unwrap();
    let shed_out = run_trace(&mut shed, &trace, &opts).total_output();
    assert!(shed_out <= expected, "{name}: shed bound");
}

#[test]
fn four_way_chain() {
    check_shape(
        "chain4",
        4,
        &[((0, 0), (1, 0)), ((1, 1), (2, 0)), ((2, 1), (3, 0))],
        11,
    );
}

#[test]
fn four_way_star() {
    // R0 is the hub; every other stream joins one of its attributes.
    check_shape(
        "star4",
        4,
        &[((0, 0), (1, 0)), ((0, 1), (2, 0)), ((0, 0), (3, 1))],
        12,
    );
}

#[test]
fn three_way_cycle() {
    check_shape(
        "cycle3",
        3,
        &[((0, 0), (1, 0)), ((1, 1), (2, 0)), ((2, 1), (0, 1))],
        13,
    );
}

#[test]
fn five_way_mixed() {
    // A chain with a star branch: R0-R1-R2, R1-R3, R3-R4.
    check_shape(
        "mixed5",
        5,
        &[
            ((0, 0), (1, 0)),
            ((1, 1), (2, 0)),
            ((1, 0), (3, 1)),
            ((3, 0), (4, 0)),
        ],
        14,
    );
}

#[test]
fn two_way_binary() {
    check_shape("binary", 2, &[((0, 0), (1, 0)), ((0, 1), (1, 1))], 15);
}

/// All policies run on a 4-way query without panicking and respect
/// capacity (the sketch layer must handle streams with 1, 2 and 3 incident
/// predicates).
#[test]
fn all_policies_on_four_way_star() {
    let preds = vec![
        EquiPredicate::new(AttrRef::new(StreamId(0), 0), AttrRef::new(StreamId(1), 0)),
        EquiPredicate::new(AttrRef::new(StreamId(0), 1), AttrRef::new(StreamId(2), 0)),
        EquiPredicate::new(AttrRef::new(StreamId(0), 0), AttrRef::new(StreamId(3), 1)),
    ];
    let query = JoinQuery::uniform(catalog(4), preds, WindowSpec::secs(30)).unwrap();
    let trace = random_trace(16, 4, 1200, 3);
    for name in ALL_POLICY_NAMES {
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).unwrap())
            .capacity_per_window(16)
            .seed(17)
            .build()
            .unwrap();
        let report = run_trace(&mut engine, &trace, &RunOptions::default());
        assert!(report.metrics.processed == trace.len() as u64, "{name}");
        for k in 0..4 {
            assert!(engine.window_len(StreamId(k)).unwrap() <= 16, "{name}");
        }
    }
}
