//! Integration: per-stream (heterogeneous) window lengths — the paper
//! claims its method "can be directly generalized to handle the case when
//! every stream has different p_i-seconds sliding window" (§2); this
//! validates that generalization against brute force.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R0 keeps 10s of history, R1 keeps 40s, R2 keeps 80s.
const WINDOWS: [u64; 3] = [10, 40, 80];

fn hetero_query() -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R0", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    JoinQuery::new(
        c,
        vec![
            EquiPredicate::new(AttrRef::new(StreamId(0), 0), AttrRef::new(StreamId(1), 0)),
            EquiPredicate::new(AttrRef::new(StreamId(1), 1), AttrRef::new(StreamId(2), 0)),
        ],
        WINDOWS.iter().map(|&p| WindowSpec::secs(p)).collect(),
    )
    .unwrap()
}

fn random_trace(seed: u64, n: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for _ in 0..n {
        trace.push(
            StreamId(rng.gen_range(0..3)),
            vec![Value(rng.gen_range(0..5)), Value(rng.gen_range(0..5))],
        );
    }
    trace
}

/// Brute-force chain join where each stream expires by its own window.
fn brute_force(trace: &Trace, rate: f64) -> u64 {
    let dt = 1.0 / rate;
    let arrivals: Vec<(usize, f64, u64, u64)> = trace
        .items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            (
                it.stream.index(),
                i as f64 * dt,
                it.values[0].raw(),
                it.values[1].raw(),
            )
        })
        .collect();
    let mut total = 0u64;
    for (i, &(s_new, t_now, a_new, b_new)) in arrivals.iter().enumerate() {
        let live = |k: usize| -> Vec<(u64, u64)> {
            arrivals[..i]
                .iter()
                .filter(|&&(s, t, _, _)| s == k && t + WINDOWS[k] as f64 > t_now + 1e-9)
                .map(|&(_, _, a, b)| (a, b))
                .collect()
        };
        let r0 = if s_new == 0 { vec![(a_new, b_new)] } else { live(0) };
        let r1 = if s_new == 1 { vec![(a_new, b_new)] } else { live(1) };
        let r2 = if s_new == 2 { vec![(a_new, b_new)] } else { live(2) };
        for &(a0, _) in &r0 {
            for &(a1, b1) in &r1 {
                if a0 == a1 {
                    for &(a2, _) in &r2 {
                        if b1 == a2 {
                            total += 1;
                        }
                    }
                }
            }
        }
    }
    total
}

#[test]
fn heterogeneous_windows_match_brute_force() {
    let trace = random_trace(31, 900);
    let expected = brute_force(&trace, 10.0);
    assert!(expected > 0);
    // Sketch policies need an explicit epoch for heterogeneous windows is
    // NOT required — all windows are time-based, the default epoch is the
    // longest window.
    let mut engine = EngineBuilder::new(hetero_query())
        .capacity_per_window(100_000)
        .seed(1)
        .build()
        .unwrap();
    let report = run_trace(&mut engine, &trace, &RunOptions::default());
    assert_eq!(report.total_output(), expected);
}

#[test]
fn heterogeneous_windows_shed_per_stream() {
    let trace = random_trace(32, 3000);
    // Small per-stream budgets proportional to each window's population.
    let mut engine = EngineBuilder::new(hetero_query())
        .capacities(vec![8, 32, 64])
        .seed(2)
        .build()
        .unwrap();
    let report = run_trace(&mut engine, &trace, &RunOptions::default());
    assert!(report.metrics.shed_window > 0);
    assert!(engine.window_len(StreamId(0)).unwrap() <= 8);
    assert!(engine.window_len(StreamId(1)).unwrap() <= 32);
    assert!(engine.window_len(StreamId(2)).unwrap() <= 64);
    assert!(report.total_output() <= brute_force(&trace, 10.0));
}

#[test]
fn shorter_windows_hold_fewer_tuples() {
    let trace = random_trace(33, 3000);
    let mut engine = EngineBuilder::new(hetero_query())
        .capacity_per_window(100_000)
        .seed(3)
        .build()
        .unwrap();
    let _ = run_trace(&mut engine, &trace, &RunOptions::default());
    // Steady state: each window's population tracks its length
    // (rate/stream = 10/3 per second; windows 10/40/80s).
    let l0 = engine.window_len(StreamId(0)).unwrap();
    let l1 = engine.window_len(StreamId(1)).unwrap();
    let l2 = engine.window_len(StreamId(2)).unwrap();
    assert!(l0 < l1 && l1 < l2, "{l0} < {l1} < {l2}");
}
