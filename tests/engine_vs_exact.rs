//! Cross-crate integration: the shedding engine degrades gracefully to the
//! exact join, and never invents results.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain3(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

fn random_trace(seed: u64, n: usize, domain: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for _ in 0..n {
        trace.push(
            StreamId(rng.gen_range(0..3)),
            vec![Value(rng.gen_range(0..domain)), Value(rng.gen_range(0..domain))],
        );
    }
    trace
}

/// With memory >= the arrivals, every policy is exact — whatever its
/// priority measure, nothing is ever evicted.
#[test]
fn every_policy_is_exact_with_enough_memory() {
    let trace = random_trace(1, 1200, 8);
    let opts = RunOptions::default();
    let exact = run_exact_trace(&chain3(60), &trace, &opts);
    assert!(exact.total_output() > 0, "trace should join");
    for name in ALL_POLICY_NAMES {
        let mut engine = EngineBuilder::new(chain3(60))
            .boxed_policy(parse_policy(name).unwrap())
            .capacity_per_window(trace.len())
            .seed(5)
            .build()
            .unwrap();
        let report = run_trace(&mut engine, &trace, &opts);
        assert_eq!(
            report.total_output(),
            exact.total_output(),
            "{name} must match the exact join without memory pressure"
        );
        assert_eq!(report.metrics.shed_window, 0, "{name}");
    }
}

/// Shedding can only lose results: output never exceeds the exact count at
/// any capacity.
#[test]
fn shed_output_never_exceeds_exact() {
    let trace = random_trace(2, 1500, 6);
    let opts = RunOptions::default();
    let exact = run_exact_trace(&chain3(40), &trace, &opts);
    for name in ALL_POLICY_NAMES {
        for capacity in [4usize, 32, 256] {
            let mut engine = EngineBuilder::new(chain3(40))
                .boxed_policy(parse_policy(name).unwrap())
                .capacity_per_window(capacity)
                .seed(6)
                .build()
                .unwrap();
            let report = run_trace(&mut engine, &trace, &opts);
            assert!(
                report.total_output() <= exact.total_output(),
                "{name}@{capacity}: shed output must be a subset count"
            );
        }
    }
}

/// The accounting identity holds on every run: every processed tuple is
/// eventually expired, shed, or still resident.
#[test]
fn tuple_accounting_identity() {
    let trace = random_trace(3, 2000, 10);
    let opts = RunOptions::default();
    for name in ["MSketch", "Bjoin", "Random"] {
        let query = chain3(30);
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).unwrap())
            .capacity_per_window(48)
            .seed(7)
            .build()
            .unwrap();
        let report = run_trace(&mut engine, &trace, &opts);
        let resident: usize = (0..3).map(|k| engine.window_len(StreamId(k)).unwrap()).sum();
        assert_eq!(
            report.metrics.processed,
            report.metrics.expired + report.metrics.shed_window + resident as u64,
            "{name}: processed = expired + shed + resident"
        );
    }
}

/// Identical seeds give identical runs; different engine seeds change a
/// randomized policy's choices.
#[test]
fn determinism_per_seed() {
    let trace = random_trace(4, 800, 5);
    let opts = RunOptions::default();
    let run = |seed: u64| {
        let mut engine = EngineBuilder::new(chain3(50))
            .boxed_policy(parse_policy("Random").unwrap())
            .capacity_per_window(24)
            .seed(seed)
            .build()
            .unwrap();
        run_trace(&mut engine, &trace, &opts).total_output()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

/// The engine handles the full synthetic generator end-to-end, and the
/// sketch-policy engine exposes a join-size estimate.
#[test]
fn end_to_end_on_region_workload() {
    let trace = RegionsGenerator::new(RegionsConfig {
        tuples_per_relation: 900,
        domain: 40,
        volume: 120,
        anchor_grid: Some(8),
        seed: 12,
        ..Default::default()
    })
    .unwrap()
    .generate();
    let query = chain3(100);
    let mut engine = EngineBuilder::new(query.clone())
        .capacity_per_window(60)
        .seed(13)
        .build()
        .unwrap();
    let report = run_trace(&mut engine, &trace, &RunOptions::default());
    assert!(report.total_output() > 0);
    assert!(report.metrics.shed_window > 0);
    assert!(engine.estimate_join_count().is_some());
    let exact = run_exact_trace(&query, &trace, &RunOptions::default());
    assert!(report.total_output() <= exact.total_output());
}
