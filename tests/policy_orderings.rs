//! Integration: the qualitative orderings the paper reports must hold on a
//! seeded, laptop-sized instance of its synthetic workload.

use mstream_core::prelude::*;

fn chain3(window_secs: u64) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(
        c,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(window_secs),
    )
    .unwrap()
}

/// A scaled-down (20%) instance of the paper's high-skew data set.
fn high_skew_trace() -> Trace {
    let mut config = RegionsConfig::with_z_intra(1.6, 2.0);
    config.tuples_per_relation = 2_000;
    config.seed = 42;
    RegionsGenerator::new(config).unwrap().generate()
}

fn run_policy(query: &JoinQuery, name: &str, capacity: usize, trace: &Trace) -> u64 {
    let mut engine = EngineBuilder::new(query.clone())
        .boxed_policy(parse_policy(name).unwrap())
        .capacity_per_window(capacity)
        .bank(BankConfig {
            s1: 600,
            s2: 1,
            seed: 7,
        })
        .seed(42)
        .build()
        .unwrap();
    run_trace(&mut engine, trace, &RunOptions::default()).total_output()
}

/// Figure 2(b)'s core ordering: the semantic policies beat the naive ones
/// by a wide margin under memory pressure on skewed data.
#[test]
fn semantic_policies_dominate_naive_ones_on_skewed_data() {
    let query = chain3(100); // scaled window (20% of 500s)
    let trace = high_skew_trace();
    let capacity = 83; // 25% of the scaled full window
    let msketch = run_policy(&query, "MSketch", capacity, &trace);
    let bjoin = run_policy(&query, "Bjoin", capacity, &trace);
    let random = run_policy(&query, "Random", capacity, &trace);
    let fifo = run_policy(&query, "FIFO", capacity, &trace);
    assert!(
        msketch > 2 * random && msketch > 2 * fifo,
        "MSketch ({msketch}) must clearly beat Random ({random}) and FIFO ({fifo})"
    );
    assert!(
        bjoin > 2 * random,
        "Bjoin ({bjoin}) must clearly beat Random ({random})"
    );
}

/// Figure 2's other structural fact: all policies coincide at 100% memory.
#[test]
fn all_policies_coincide_at_full_memory() {
    let query = chain3(100);
    let trace = high_skew_trace();
    let full = 334; // scaled full window
    let outputs: Vec<u64> = ["MSketch", "Bjoin", "Age", "Random", "FIFO"]
        .iter()
        .map(|name| run_policy(&query, name, full, &trace))
        .collect();
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "no shedding at full memory: {outputs:?}"
    );
}

/// More memory can only help (weakly) for a fixed semantic policy.
#[test]
fn output_grows_with_memory_for_msketch() {
    let query = chain3(100);
    let trace = high_skew_trace();
    let outs: Vec<u64> = [16usize, 83, 167, 334]
        .iter()
        .map(|&cap| run_policy(&query, "MSketch", cap, &trace))
        .collect();
    for w in outs.windows(2) {
        assert!(w[0] <= w[1], "monotone in memory: {outs:?}");
    }
}

/// The paper's Age observation: remaining lifetime adds nothing over raw
/// productivity — Age tracks MSketch closely (within 25%) rather than
/// improving on it.
#[test]
fn age_tracks_msketch() {
    let query = chain3(100);
    let trace = high_skew_trace();
    let capacity = 83;
    let msketch = run_policy(&query, "MSketch", capacity, &trace) as f64;
    let age = run_policy(&query, "Age", capacity, &trace) as f64;
    let ratio = age / msketch;
    assert!(
        (0.75..=1.25).contains(&ratio),
        "Age/MSketch ratio {ratio:.2} should be near 1"
    );
}

/// Figure 5's drift claim, scaled down: MSketch keeps up with Random under
/// region-phase concept drift (no lasting penalty from its tumbling
/// estimates).
#[test]
fn msketch_survives_concept_drift() {
    let mut config = RegionsConfig::with_z_intra(1.6, 2.0);
    config.tuples_per_relation = 2_000;
    config.seed = 42;
    config.feed = FeedOrder::RegionPhases;
    let trace = RegionsGenerator::new(config).unwrap().generate();
    assert!(!trace.drift_points.is_empty());
    let query = chain3(100);
    let capacity = 250; // 75% of the scaled window
    let msketch = run_policy(&query, "MSketch", capacity, &trace) as f64;
    let random = run_policy(&query, "Random", capacity, &trace) as f64;
    assert!(
        msketch >= 0.85 * random,
        "MSketch ({msketch}) must not collapse under drift vs Random ({random})"
    );
}
