//! Differential acceptance tests for the batch-amortized ingest path
//! (DESIGN.md "Vectorized kernels and batch-amortized probes").
//!
//! The contract under test: feeding a trace through `ingest_batch` /
//! `ingest_tuple_batch` — any chunking — must replay the per-arrival
//! reference **bit-identically**: same result rows in the same emission
//! order, same sequence numbers, same shed decisions, same deterministic
//! metrics. Batching may only amortize work (one prefetched lookup pass,
//! coalesced priority rescoring); it must never reorder or change an
//! observable outcome. This holds at full memory, under per-window and
//! global-pool shedding, across the sharded engine (where the worker's
//! `batch_ingest` knob flips the path), and on the multi-query plane.

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch granularities under test: the degenerate run, a non-divisor of
/// every trace length, and one larger than most per-epoch runs.
const BATCHES: [usize; 3] = [1, 7, 64];

/// All predicates on attribute 0 — key-partitionable, so sharded runs
/// keep their requested width.
fn keyed3(window: WindowSpec) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(c, &[("R1.A1", "R2.A1"), ("R2.A1", "R3.A1")], window).unwrap()
}

/// The paper's chain through two different attributes of R2 — not
/// key-partitionable, so sharded runs exercise broadcast mode.
fn chain3(window: WindowSpec) -> JoinQuery {
    let mut c = Catalog::new();
    c.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    c.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    JoinQuery::from_names(c, &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")], window).unwrap()
}

fn trace(n: usize, key_domain: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Arrival::new(
                StreamId(rng.gen_range(0..3)),
                vec![
                    Value(rng.gen_range(0..key_domain)),
                    Value(rng.gen_range(0..key_domain)),
                ],
                VTime::from_secs(i as u64 / 4),
            )
        })
        .collect()
}

/// Metrics with the wall-clock timing counters zeroed — everything else
/// is deterministic and must match exactly across equivalent runs.
fn det(m: &EngineMetrics) -> EngineMetrics {
    EngineMetrics {
        sketch_observe_ns: 0,
        priority_rebuild_ns: 0,
        score_ns: 0,
        ..m.clone()
    }
}

/// Result rows in emission order as per-stream sequence numbers. No sort:
/// batching must preserve the exact emission sequence, not just the set.
fn emitted(rows: &[Vec<Tuple>]) -> Vec<Vec<SeqNo>> {
    rows.iter()
        .map(|row| row.iter().map(|t| t.seq).collect())
        .collect()
}

fn build(query: JoinQuery, policy: &str, memory: &Memory) -> ShedJoinEngine {
    let builder = EngineBuilder::new(query)
        .boxed_policy(parse_policy(policy).unwrap())
        .seed(5);
    match memory {
        Memory::PerWindow(c) => builder.capacity_per_window(*c),
        Memory::GlobalPool(t) => builder.global_pool(*t),
    }
    .build()
    .unwrap()
}

enum Memory {
    PerWindow(usize),
    GlobalPool(usize),
}

fn run_per_arrival(
    query: JoinQuery,
    policy: &str,
    memory: &Memory,
    arrivals: &[Arrival],
) -> (Vec<Vec<SeqNo>>, EngineMetrics, usize) {
    let mut engine = build(query, policy, memory);
    let mut sink = VecSink::default();
    for a in arrivals {
        engine.ingest(a.clone(), &mut sink);
    }
    (emitted(&sink.rows), det(engine.metrics()), engine.total_resident())
}

fn run_batched(
    query: JoinQuery,
    policy: &str,
    memory: &Memory,
    arrivals: &[Arrival],
    batch: usize,
) -> (Vec<Vec<SeqNo>>, EngineMetrics, usize) {
    let mut engine = build(query, policy, memory);
    let mut sink = VecSink::default();
    for chunk in arrivals.chunks(batch) {
        engine.ingest_batch(chunk.iter().cloned(), &mut sink);
    }
    (emitted(&sink.rows), det(engine.metrics()), engine.total_resident())
}

/// Full memory: the batched path replays the per-arrival reference
/// bit-identically for a sketch policy and a deterministic one, on both
/// the keyed and the chain shape.
#[test]
fn batched_ingest_is_bit_identical_at_full_memory() {
    let arrivals = trace(600, 8, 7);
    for (label, query) in [
        ("keyed3", keyed3(WindowSpec::secs(25))),
        ("chain3", chain3(WindowSpec::secs(25))),
    ] {
        for policy in ["MSketch", "FIFO"] {
            let memory = Memory::PerWindow(100_000);
            let reference = run_per_arrival(query.clone(), policy, &memory, &arrivals);
            assert!(!reference.0.is_empty(), "{label}: trace must produce joins");
            for batch in BATCHES {
                let got = run_batched(query.clone(), policy, &memory, &arrivals, batch);
                assert_eq!(
                    got, reference,
                    "{label}/{policy}: batch={batch} diverged from per-arrival"
                );
            }
        }
    }
}

/// Reduced memory is the hard case: evictions force priority reads, so
/// every deferred produced-credit must be flushed at exactly the right
/// point. Per-window and global-pool disciplines, every policy whose
/// priorities depend on produced counts plus the sketch family.
#[test]
fn batched_ingest_is_bit_identical_under_shedding() {
    let arrivals = trace(600, 5, 11);
    let query = keyed3(WindowSpec::secs(30));
    for memory in [Memory::PerWindow(6), Memory::GlobalPool(20)] {
        for policy in ["MSketch", "Bjoin", "Life", "FIFO", "Age"] {
            let reference = run_per_arrival(query.clone(), policy, &memory, &arrivals);
            assert!(
                reference.1.shed_window > 0,
                "{policy}: this capacity must actually shed"
            );
            for batch in BATCHES {
                let got = run_batched(query.clone(), policy, &memory, &arrivals, batch);
                assert_eq!(
                    got, reference,
                    "{policy}: batch={batch} diverged from per-arrival under shedding"
                );
            }
        }
    }
}

/// Tuple-count windows roll epochs and expire on arrival counts — the
/// rollover flush point in the batched path must land identically.
#[test]
fn batched_ingest_is_bit_identical_on_tuple_windows() {
    let arrivals = trace(400, 5, 13);
    let query = keyed3(WindowSpec::Tuples(9));
    for policy in ["MSketch", "Life"] {
        let memory = Memory::PerWindow(6);
        let reference = run_per_arrival(query.clone(), policy, &memory, &arrivals);
        for batch in BATCHES {
            let got = run_batched(query.clone(), policy, &memory, &arrivals, batch);
            assert_eq!(
                got, reference,
                "{policy}: batch={batch} diverged on tuple windows"
            );
        }
    }
}

/// With a disorder bound the event-time front end owns arrival order;
/// `ingest_batch` must fall back to the per-arrival path and stay exact.
#[test]
fn batched_ingest_defers_to_event_time_front_end() {
    let arrivals = trace(300, 6, 17);
    let build_with_bound = || {
        EngineBuilder::new(keyed3(WindowSpec::secs(25)))
            .policy(Fifo)
            .capacity_per_window(100_000)
            .seed(5)
            .disorder_bound(VDur::from_secs(2))
            .build()
            .unwrap()
    };
    let mut reference = build_with_bound();
    let mut ref_sink = VecSink::default();
    for a in &arrivals {
        reference.ingest(a.clone(), &mut ref_sink);
    }
    let mut batched = build_with_bound();
    let mut sink = VecSink::default();
    for chunk in arrivals.chunks(7) {
        batched.ingest_batch(chunk.iter().cloned(), &mut sink);
    }
    assert_eq!(emitted(&sink.rows), emitted(&ref_sink.rows));
    assert_eq!(det(batched.metrics()), det(reference.metrics()));
}

fn sharded_report(
    query: JoinQuery,
    shards: usize,
    capacity: usize,
    arrivals: &[Arrival],
    batch_ingest: bool,
) -> ShardedRunReport {
    let mut engine = EngineBuilder::new(query)
        .policy(MSketch)
        .capacity_per_window(capacity)
        .seed(5)
        .shard_config(ShardConfig {
            shards,
            channel_capacity: 4,
            batch_size: 7,
            backpressure: Backpressure::Block,
            collect_rows: true,
            batch_ingest,
            ..ShardConfig::default()
        })
        .build_sharded()
        .unwrap();
    for a in arrivals {
        engine.ingest(a.clone());
    }
    engine.finish().unwrap()
}

/// The worker's `batch_ingest` knob must be invisible: batched and
/// per-arrival workers produce the same merged rows and deterministic
/// metrics at S ∈ {1, 4}, at full memory and while shedding.
#[test]
fn sharded_batch_knob_is_observably_invisible() {
    let arrivals = trace(700, 12, 19);
    for shards in [1usize, 4] {
        for capacity in [100_000usize, 32] {
            let on = sharded_report(
                keyed3(WindowSpec::secs(25)),
                shards,
                capacity,
                &arrivals,
                true,
            );
            let off = sharded_report(
                keyed3(WindowSpec::secs(25)),
                shards,
                capacity,
                &arrivals,
                false,
            );
            let mut rows_on = emitted(on.rows.as_ref().unwrap());
            let mut rows_off = emitted(off.rows.as_ref().unwrap());
            // Merge order across shard outputs is canonicalized by the
            // report; per-shard emission order is what batching must
            // preserve, and equal sorted sets + equal per-shard metrics
            // pin exactly that.
            rows_on.sort();
            rows_off.sort();
            assert_eq!(
                rows_on, rows_off,
                "S={shards} cap={capacity}: batch knob changed the row set"
            );
            assert_eq!(
                det(&on.combined.metrics),
                det(&off.combined.metrics),
                "S={shards} cap={capacity}: batch knob changed the metrics"
            );
            for (a, b) in on.per_shard.iter().zip(off.per_shard.iter()) {
                assert_eq!(det(a), det(b), "S={shards} cap={capacity}: per-shard drift");
            }
        }
    }
}

/// The multi-query plane: `ingest_batch` chunks must replay the
/// per-arrival reference bit-identically for every registered query.
#[test]
fn multi_query_batched_ingest_is_bit_identical() {
    let queries = vec![keyed3(WindowSpec::secs(20)), chain3(WindowSpec::secs(30))];
    let arrivals = trace(500, 6, 23);
    let run = |batch: Option<usize>| {
        let mut b = EngineBuilder::new_multi()
            .policy(MSketch)
            .capacity_per_window(8)
            .seed(5);
        for q in &queries {
            b.register(q.clone()).unwrap();
        }
        let mut engine = b.build_multi().unwrap();
        let mut sink = QueryRowsSink::default();
        match batch {
            None => {
                for a in &arrivals {
                    engine.ingest(a.clone(), &mut sink);
                }
            }
            Some(b) => {
                for chunk in arrivals.chunks(b) {
                    engine.ingest_batch(chunk.iter().cloned(), &mut sink);
                }
            }
        }
        let rows: Vec<Vec<Vec<SeqNo>>> = sink.rows.iter().map(|r| emitted(r)).collect();
        (rows, det(engine.metrics()), engine.total_resident())
    };
    let reference = run(None);
    assert!(
        reference.0.iter().any(|r| !r.is_empty()),
        "trace must produce joins for at least one query"
    );
    for batch in BATCHES {
        assert_eq!(
            run(Some(batch)),
            reference,
            "multi-query batch={batch} diverged from per-arrival"
        );
    }
}
