//! Parallel execution of one shedding join, now a library feature.
//!
//! Earlier revisions of this example hand-rolled threads and channels
//! around a single-threaded engine. That pattern has been promoted into
//! the library as [`ShardedJoinEngine`]: the coordinator analyzes the
//! query's predicates, hash-partitions arrivals by the shared join
//! attribute across worker threads (each running an independent
//! `ShedJoinEngine` on `1/S` of the memory budget), and merges the
//! per-shard reports.
//!
//! Three runs are shown:
//!
//! 1. A *partitionable* query (all predicates on one attribute) fanned
//!    out over four shards with `Backpressure::Shed` — when a worker's
//!    channel saturates the coordinator sheds at the source, the
//!    back-pressure-free regime a DSMS operates in.
//! 2. The paper's chain query, whose middle stream joins through two
//!    different attributes: no partition key exists, so the engine runs
//!    it in *broadcast mode* (DESIGN.md §12) — the dominant stream is
//!    partitioned round-robin and the others are replicated to every
//!    shard as build-only copies.
//! 3. The same chain with broadcast disabled, which degrades to one
//!    shard and reports why.
//!
//! ```text
//! cargo run --release -p mstream-core --example parallel_feed
//! ```

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sensors_query(predicates: &[(&str, &str)]) -> JoinQuery {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Sensors", &["region", "kind"]));
    catalog.add_stream(StreamSchema::new("Readings", &["region", "level"]));
    catalog.add_stream(StreamSchema::new("Alarms", &["region", "severity"]));
    JoinQuery::from_names(catalog, predicates, WindowSpec::secs(30)).expect("valid query")
}

fn feed(engine: &mut ShardedJoinEngine, arrivals: usize) {
    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..arrivals {
        // Half the traffic piles onto one hot region, the rest spreads out.
        let hot = rng.gen_bool(0.5);
        let region = if hot { 7 } else { rng.gen_range(0..40) };
        let values = vec![Value(region), Value(rng.gen_range(0..40))];
        let stream = StreamId(i % 3);
        // Virtual time: ~300 arrivals per second across the three sources.
        let now = VTime::from_micros(i as u64 * 3_333);
        engine.ingest(Arrival::new(stream, values, now));
    }
}

fn main() {
    // All three predicates share the `region` attribute class, so arrivals
    // can be hash-partitioned by region across worker threads.
    let partitionable = sensors_query(&[
        ("Sensors.region", "Readings.region"),
        ("Readings.region", "Alarms.region"),
    ]);
    println!("partitionable query: {:?}", partitionable.partitioning());

    let mut engine = EngineBuilder::new(partitionable)
        .policy(MSketch)
        .capacity_per_window(128) // total budget; each shard gets 1/S
        .seed(9)
        .shard_config(ShardConfig {
            shards: 4,
            channel_capacity: 8,
            batch_size: 16,
            backpressure: Backpressure::Shed, // live mode: drop, don't block
            ..ShardConfig::default()
        })
        .build_sharded()
        .expect("valid engine");
    feed(&mut engine, 30_000);
    let report = engine.finish().expect("workers exit cleanly");
    println!(
        "  {} shards  processed {:>6}  window-shed {:>6}  channel-shed {:>6}  results {:>8}",
        report.combined.shards,
        report.combined.metrics.processed,
        report.combined.metrics.shed_window,
        report.shed_channel,
        report.combined.total_output(),
    );
    for (i, m) in report.per_shard.iter().enumerate() {
        println!(
            "    shard {i}: processed {:>6}  results {:>8}",
            m.processed, m.total_output
        );
    }

    // The paper's chain shape joins Readings through two different
    // attributes — no single partition key exists. A 4-shard request
    // still runs wide: broadcast mode partitions the dominant stream
    // (Readings, incident to both predicates) round-robin and replicates
    // the other streams to every shard as build-only copies, at the cost
    // of window memory scaling with S for the replicated streams.
    let chain = sensors_query(&[
        ("Sensors.region", "Readings.region"),
        ("Readings.level", "Alarms.region"),
    ]);
    let mut engine = EngineBuilder::new(chain.clone())
        .policy(MSketch)
        .capacity_per_window(128)
        .seed(9)
        .shards(4)
        .build_sharded()
        .expect("valid engine");
    assert!(engine.degraded().is_none(), "broadcast mode runs wide");
    feed(&mut engine, 30_000);
    let report = engine.finish().expect("workers exit cleanly");
    println!(
        "\nchain query in broadcast mode: {} shards  processed {:>6}  replicated {:>6}  results {:>8}",
        report.combined.shards,
        report.combined.metrics.processed,
        report.combined.metrics.replicated,
        report.combined.total_output(),
    );

    // Opting out of broadcast (e.g. to cap memory at one window per
    // stream) degrades the same query to one worker — and says why.
    let engine = EngineBuilder::new(chain)
        .policy(MSketch)
        .capacity_per_window(128)
        .seed(9)
        .shards(4)
        .broadcast(false)
        .build_sharded()
        .expect("valid engine");
    let degraded = engine
        .degraded()
        .map(str::to_owned)
        .expect("chain query cannot partition by key");
    let report = engine
        .run_trace(&Trace::default(), 300.0)
        .expect("empty run still finishes");
    println!(
        "\nchain query with broadcast disabled degraded to {} shard: {}",
        report.combined.shards, degraded
    );
}
