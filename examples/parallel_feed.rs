//! Concurrent sources feeding one shedding join operator.
//!
//! The paper's model has `n` independent sources pushing into a single
//! join operator through a bounded queue. This example realizes that
//! architecture with real threads: three producer threads (one per stream)
//! push tuples through a bounded crossbeam channel — the "input queue" —
//! while the consumer thread runs the shedding engine; a parking_lot-
//! protected metrics block is shared with a monitor that prints progress.
//!
//! When the channel is full the producers *shed at the source* (drop the
//! tuple and count it) rather than block — the back-pressure-free regime a
//! DSMS operates in. The engine additionally sheds from its windows.
//!
//! Note: the library itself stays single-threaded and deterministic; this
//! example shows how to embed it in a threaded pipeline. (The merge order
//! of concurrent producers is inherently racy, so output counts here vary
//! from run to run — that is the point of the demonstration.)
//!
//! ```text
//! cargo run --release -p mstream-core --example parallel_feed
//! ```

use crossbeam::channel;
use mstream_core::prelude::*;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared pipeline counters.
#[derive(Default)]
struct PipelineStats {
    produced: [AtomicU64; 3],
    source_shed: [AtomicU64; 3],
}

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Sensors", &["region", "kind"]));
    catalog.add_stream(StreamSchema::new("Readings", &["region", "level"]));
    catalog.add_stream(StreamSchema::new("Alarms", &["level", "severity"]));
    let query = JoinQuery::from_names(
        catalog,
        &[
            ("Sensors.region", "Readings.region"),
            ("Readings.level", "Alarms.level"),
        ],
        WindowSpec::secs(30),
    )
    .expect("valid query");

    // The bounded "input queue" between sources and the operator.
    let (tx, rx) = channel::bounded::<(StreamId, Vec<Value>)>(256);
    let stats = Arc::new(PipelineStats::default());
    let running = Arc::new(AtomicU64::new(1));

    // Three producers, one per stream, each with its own rate and skew.
    let mut producers = Vec::new();
    for s in 0..3usize {
        let tx = tx.clone();
        let stats = Arc::clone(&stats);
        let running = Arc::clone(&running);
        producers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            while running.load(Ordering::Relaxed) == 1 {
                let hot = rng.gen_bool(0.5);
                let key = if hot { 7 } else { rng.gen_range(0..40) };
                let values = vec![Value(key), Value(rng.gen_range(0..40))];
                stats.produced[s].fetch_add(1, Ordering::Relaxed);
                // Shed at the source instead of blocking the sensor.
                if tx.try_send((StreamId(s), values)).is_err() {
                    stats.source_shed[s].fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_micros(120));
            }
        }));
    }
    drop(tx);

    // The consumer: the shedding join operator, deliberately slower than
    // the producers so the channel saturates.
    let engine_metrics = Arc::new(Mutex::new(EngineMetrics::default()));
    let consumer = {
        let engine_metrics = Arc::clone(&engine_metrics);
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            let mut engine = ShedJoinBuilder::new(query)
                .policy(MSketch)
                .capacity_per_window(128)
                .seed(9)
                .build()
                .expect("valid engine");
            let started = Instant::now();
            while let Ok((stream, values)) = rx.recv() {
                // Virtual time tracks wall time in this live pipeline.
                let now = VTime::from_micros(started.elapsed().as_micros() as u64);
                engine.process_arrival(stream, values, now);
                // Simulated per-tuple service cost.
                std::thread::sleep(Duration::from_micros(400));
                *engine_metrics.lock() = engine.metrics().clone();
                if running.load(Ordering::Relaxed) == 0 {
                    break;
                }
            }
            engine.metrics().clone()
        })
    };

    // Monitor: print a progress line twice, then stop the pipeline.
    for tick in 1..=2 {
        std::thread::sleep(Duration::from_millis(600));
        let m = engine_metrics.lock().clone();
        let produced: u64 = stats.produced.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let source_shed: u64 = stats
            .source_shed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        println!(
            "t+{:>4}ms  produced {:>6}  source-shed {:>6}  processed {:>5}  joined {:>7}",
            tick * 600,
            produced,
            source_shed,
            m.processed,
            m.total_output
        );
    }
    running.store(0, Ordering::Relaxed);
    for p in producers {
        p.join().expect("producer exits cleanly");
    }
    let final_metrics = consumer.join().expect("consumer exits cleanly");
    let produced: u64 = stats.produced.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let source_shed: u64 = stats
        .source_shed
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum();
    println!("\nfinal: {produced} produced, {source_shed} shed at the sources,");
    println!(
        "       {} processed by the operator, {} shed from windows, {} results",
        final_metrics.processed, final_metrics.shed_window, final_metrics.total_output
    );
    println!(
        "\nThe operator survives a sustained overload: the channel sheds the \
         excess at\nthe sources and MSketch keeps the join-relevant share of \
         what gets through."
    );
}
