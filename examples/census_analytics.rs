//! Census analytics: statistically accurate aggregates from a shed join.
//!
//! Joins three month-streams of census-like survey rows (see the
//! `mstream-workload` census generator and DESIGN.md §5) on Age and
//! Education, then answers a windowed analytics question — *average income
//! bracket of the joined cohort* — from a memory-limited engine using the
//! random-sampling policy (`MSketch-RS`), and compares it with the exact
//! answer and with naive random shedding.
//!
//! ```text
//! cargo run --release -p mstream-core --example census_analytics
//! ```

use mstream_core::prelude::*;

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Oct03", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Apr04", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Oct04", &["Age", "Income", "Education"]));
    let window = 200u64;
    let query = JoinQuery::from_names(
        catalog,
        &[
            ("Oct03.Age", "Apr04.Age"),
            ("Apr04.Education", "Oct04.Education"),
        ],
        WindowSpec::secs(window),
    )
    .expect("valid query");

    let trace = CensusGenerator::new(CensusConfig {
        tuples_per_month: 4_000,
        ..Default::default()
    })
    .expect("valid config")
    .generate();

    // Collect the Income attribute of the Apr04 side of every result.
    let opts = RunOptions {
        agg_attr: Some((StreamId(1), 1)),
        agg_bucket: VDur::from_secs(window),
        ..Default::default()
    };

    println!("windowed AVG(income bracket) of the joined cohort\n");
    let exact = run_exact_trace(&query, &trace, &opts);
    let truth = exact.agg_values.as_ref().expect("collected");
    println!(
        "exact join: {} result tuples across {} windows",
        exact.total_output(),
        truth.buckets().iter().filter(|b| !b.is_empty()).count()
    );

    // Memory for only ~15% of a full window.
    let capacity = 100;
    println!("\nwith {capacity} tuples/window of memory:");
    println!(
        "{:<12} {:>10} {:>16} {:>18}",
        "policy", "sample", "avg rel. error", "quartile diff"
    );
    for name in ["MSketch-RS", "Random"] {
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).expect("builtin policy"))
            .capacity_per_window(capacity)
            .seed(11)
            .build()
            .expect("valid engine");
        let report = run_trace(&mut engine, &trace, &opts);
        let sample = report.agg_values.as_ref().expect("collected");
        let cmp = SeriesComparison::from_hists(truth, sample);
        println!(
            "{:<12} {:>10} {:>15.4}% {:>18.3}",
            name,
            sample.total_samples(),
            cmp.avg_relative_error * 100.0,
            cmp.avg_quantile_difference,
        );
    }

    // Per-window detail for the exact join: the analytics a consumer sees.
    println!("\nexact per-window income profile (first 6 windows):");
    println!("{:>8} {:>10} {:>8} {:>8} {:>8}", "window", "tuples", "Q1", "median", "Q3");
    for (i, bucket) in truth.buckets().iter().take(6).enumerate() {
        if let Some([q1, q2, q3]) = bucket.quartiles() {
            println!(
                "{:>7}s {:>10} {:>8.1} {:>8.1} {:>8.1}",
                i as u64 * window,
                bucket.len(),
                q1,
                q2,
                q3
            );
        }
    }
}
