//! Stream mining over a shed join — the paper's future-work direction
//! (§6): "a statistically accurate random sample is usually sufficient to
//! answer stream mining queries such as clustering and classification".
//!
//! A reservoir sample is maintained over the output of a memory-limited
//! 3-way join, and a 1-nearest-neighbour classifier answers a streaming
//! question from it: *given a joined (Age, Education) profile, predict the
//! income bracket class*. The classifier trained on the shed join's sample
//! is evaluated against labels derived from the exact join.
//!
//! ```text
//! cargo run --release -p mstream-core --example stream_mining
//! ```

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A labelled training point harvested from the join output.
#[derive(Clone, Copy, Debug)]
struct Point {
    age: f64,
    education: f64,
    /// Class label: low (0) / mid (1) / high (2) income bracket.
    class: u8,
}

fn income_class(income: u64) -> u8 {
    match income {
        0..=6 => 0,
        7..=11 => 1,
        _ => 2,
    }
}

/// 1-NN prediction over the reservoir.
fn predict(sample: &[Point], age: f64, education: f64) -> Option<u8> {
    sample
        .iter()
        .min_by(|a, b| {
            let da = (a.age - age).powi(2) + (a.education - education).powi(2);
            let db = (b.age - age).powi(2) + (b.education - education).powi(2);
            da.partial_cmp(&db).expect("finite distances")
        })
        .map(|p| p.class)
}

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Oct03", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Apr04", &["Age", "Income", "Education"]));
    catalog.add_stream(StreamSchema::new("Oct04", &["Age", "Income", "Education"]));
    let query = JoinQuery::from_names(
        catalog,
        &[
            ("Oct03.Age", "Apr04.Age"),
            ("Apr04.Education", "Oct04.Education"),
        ],
        WindowSpec::secs(150),
    )
    .expect("valid query");

    let trace = CensusGenerator::new(CensusConfig {
        tuples_per_month: 3_000,
        ..Default::default()
    })
    .expect("valid config")
    .generate();

    // Ground truth: the exact join's majority class per (age, education)
    // cell — what a classifier with unlimited resources would learn.
    let mut cell_counts = std::collections::HashMap::<(u64, u64), [u64; 3]>::new();
    let mut exact = ExactJoin::new(query.clone());
    let dt = VDur::from_rate(10.0);
    for (i, item) in trace.items.iter().enumerate() {
        let now = VTime::ZERO + dt.mul(i as u64);
        exact.process_each(item.stream, item.values.clone(), now, |b| {
            let age = b.value(StreamId(1), 0).raw();
            let edu = b.value(StreamId(1), 2).raw();
            let class = income_class(b.value(StreamId(1), 1).raw());
            cell_counts.entry((age, edu)).or_default()[class as usize] += 1;
        });
    }
    let truth: Vec<((u64, u64), u8)> = cell_counts
        .iter()
        .map(|(&cell, counts)| {
            let best = (0..3).max_by_key(|&c| counts[c]).expect("3 classes") as u8;
            (cell, best)
        })
        .collect();
    println!(
        "exact join: {} results over {} distinct (age, education) cells",
        exact.total_output(),
        truth.len()
    );

    // Mine from shed joins: reservoir of 400 labelled points.
    println!("\n1-NN income-class accuracy from a 400-point reservoir:");
    println!("{:<12} {:>10} {:>10}", "policy", "seen", "accuracy");
    for name in ["MSketch-RS", "FIFO"] {
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).expect("builtin policy"))
            .capacity_per_window(80)
            .seed(3)
            .build()
            .expect("valid engine");
        let mut reservoir: Reservoir<Point> = Reservoir::new(400);
        let mut rng = StdRng::seed_from_u64(17);
        for (i, item) in trace.items.iter().enumerate() {
            let now = VTime::ZERO + dt.mul(i as u64);
            let arrival = Arrival::new(item.stream, item.values.clone(), now);
            engine.ingest(
                arrival,
                &mut FnSink(|b: &Bindings<'_>| {
                    reservoir.offer(
                        Point {
                            age: b.value(StreamId(1), 0).raw() as f64,
                            education: b.value(StreamId(1), 2).raw() as f64,
                            class: income_class(b.value(StreamId(1), 1).raw()),
                        },
                        &mut rng,
                    );
                }),
            );
        }
        let sample = reservoir.items();
        let correct = truth
            .iter()
            .filter(|&&((age, edu), label)| {
                predict(sample, age as f64, edu as f64) == Some(label)
            })
            .count();
        println!(
            "{:<12} {:>10} {:>9.1}%",
            name,
            reservoir.seen(),
            100.0 * correct as f64 / truth.len().max(1) as f64
        );
    }
    println!(
        "\nThe classifier never sees the exact join; a bounded reservoir over \
         the shed\njoin's output is enough to recover the class structure."
    );
}
