//! Network-monitoring scenario: correlating three event streams under
//! overload — the application class the paper's introduction motivates.
//!
//! Three monitors emit events at a rate the join operator cannot keep up
//! with (arrivals 4x faster than service):
//!
//! * `Flows(src, dst)`      — flow records from a border router,
//! * `Alerts(host, sig)`    — IDS alerts keyed by the offending host,
//! * `DnsReqs(resolver, domain_class)` — DNS requests per resolver.
//!
//! The continuous query correlates alerts with the flows of the alerted
//! host and the DNS activity of the flow's destination:
//!
//! ```sql
//! SELECT * FROM Flows [300s], Alerts [300s], DnsReqs [300s]
//! WHERE Flows.src = Alerts.host AND Flows.dst = DnsReqs.resolver
//! ```
//!
//! A handful of compromised hosts generate most of the correlated
//! activity; semantic shedding keeps exactly those, so the security
//! analyst keeps seeing the incidents even while most traffic is dropped.
//!
//! ```text
//! cargo run --release -p mstream-core --example network_monitor
//! ```

use mstream_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an interleaved trace with a few "hot" compromised hosts whose
/// activity appears on all three streams.
fn traffic(seed: u64, arrivals: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    let hosts = 200u64;
    let hot: Vec<u64> = (0..4).map(|i| 13 + 31 * i).collect();
    for i in 0..arrivals {
        let stream = StreamId(i % 3);
        let pick_host = |rng: &mut StdRng| -> u64 {
            if rng.gen_bool(0.45) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                rng.gen_range(0..hosts)
            }
        };
        let values = match stream.index() {
            // Flows(src, dst)
            0 => vec![Value(pick_host(&mut rng)), Value(pick_host(&mut rng))],
            // Alerts(host, sig)
            1 => vec![Value(pick_host(&mut rng)), Value(rng.gen_range(0..32))],
            // DnsReqs(resolver, domain_class)
            _ => vec![Value(pick_host(&mut rng)), Value(rng.gen_range(0..8))],
        };
        trace.push(stream, values);
    }
    trace
}

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("Flows", &["src", "dst"]));
    catalog.add_stream(StreamSchema::new("Alerts", &["host", "sig"]));
    catalog.add_stream(StreamSchema::new("DnsReqs", &["resolver", "domain_class"]));
    let query = JoinQuery::from_names(
        catalog,
        &[("Flows.src", "Alerts.host"), ("Flows.dst", "DnsReqs.resolver")],
        WindowSpec::secs(300),
    )
    .expect("valid query");

    let trace = traffic(99, 24_000);
    // 40 events/s arrive; the operator services only 10/s; the input queue
    // holds 200 events.
    let opts = RunOptions {
        sim: SimConfig {
            arrival_rate: 40.0,
            service_rate: Some(10.0),
            queue_capacity: 200,
        },
        ..Default::default()
    };

    println!("correlating Flows x Alerts x DnsReqs under 4x overload\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "policy", "correlated", "queue-shed", "window-shed", "processed"
    );
    for name in ["MSketch", "Bjoin", "Random", "FIFO"] {
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).expect("builtin policy"))
            .capacity_per_window(400)
            .seed(1)
            .build()
            .expect("valid engine");
        let report = run_trace(&mut engine, &trace, &opts);
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12}",
            name,
            report.total_output(),
            report.metrics.shed_queue,
            report.metrics.shed_window,
            report.metrics.processed,
        );
    }
    println!(
        "\nEvery policy must drop ~3/4 of the events; the sketch-guided one \
         drops the\nuncorrelated background and keeps the incident traffic."
    );
}
