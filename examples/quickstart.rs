//! Quickstart: a 3-way sliding-window join that keeps producing results
//! under a tight memory budget by shedding semantically.
//!
//! ```text
//! cargo run --release -p mstream-core --example quickstart
//! ```

use mstream_core::prelude::*;

fn main() {
    // 1. Declare the streams and the query:
    //    R1 ⋈ R2 ⋈ R3  ON  R1.A1 = R2.A1  AND  R2.A2 = R3.A1,
    //    over 200-second sliding windows.
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("R1", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R2", &["A1", "A2"]));
    catalog.add_stream(StreamSchema::new("R3", &["A1", "A2"]));
    let query = JoinQuery::from_names(
        catalog,
        &[("R1.A1", "R2.A1"), ("R2.A2", "R3.A1")],
        WindowSpec::secs(200),
    )
    .expect("valid query");

    // 2. A skewed synthetic workload (the paper's Table-1 generator, small).
    let trace = RegionsGenerator::new(RegionsConfig {
        tuples_per_relation: 3_000,
        z_intra: (1.6, 2.0),
        seed: 7,
        ..Default::default()
    })
    .expect("valid workload")
    .generate();

    // Full windows would hold ~rate x 200s ≈ 667 tuples; allow only 120.
    let capacity = 120;

    // 3. Run the same trace under different shedding policies.
    println!("3-way window join, {} arrivals, {capacity} tuples/window:\n", trace.len());
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>9}",
        "policy", "output tuples", "shed", "expired", "time"
    );
    let exact = run_exact_trace(&query, &trace, &RunOptions::default());
    for name in ["MSketch", "Bjoin", "Random", "FIFO"] {
        let mut engine = EngineBuilder::new(query.clone())
            .boxed_policy(parse_policy(name).expect("builtin policy"))
            .capacity_per_window(capacity)
            .seed(42)
            .build()
            .expect("valid engine");
        let report = run_trace(&mut engine, &trace, &RunOptions::default());
        println!(
            "{:<12} {:>14} {:>10} {:>10} {:>8.2}s",
            name,
            report.total_output(),
            report.metrics.shed_window,
            report.metrics.expired,
            report.wall_time.as_secs_f64(),
        );
    }
    println!(
        "{:<12} {:>14}   (unbounded memory reference)",
        "exact",
        exact.total_output()
    );
    println!(
        "\nThe semantic policies (MSketch, Bjoin) retain the tuples predicted \
         to join and\nrecover several times more of the exact result than \
         Random/FIFO from the same\nmemory; at larger scales and under overload \
         MSketch's multi-way estimates pull\nahead of the pairwise Bjoin (see \
         the fig2/fig6 benchmark binaries)."
    );
}
