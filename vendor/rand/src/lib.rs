//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crate-registry access, so the workspace
//! vendors a minimal, API-compatible subset of `rand 0.8`: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — *not* the
//! ChaCha12 core of upstream `StdRng` — so absolute random streams differ
//! from upstream. Every test and experiment in this workspace only relies
//! on determinism per seed (same seed ⇒ same stream), which this stub
//! guarantees.

#![forbid(unsafe_code)]

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is used by this
/// workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_one<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_one<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as $u;
                let hi = high as $u;
                // Width of the sampled set, as an offset span; `wrapping`
                // arithmetic maps signed ranges onto the unsigned lattice.
                let span = hi.wrapping_sub(lo);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if span == 0 {
                    // Inclusive full-domain range (or an empty one, which
                    // callers never construct): any value is uniform.
                    if inclusive {
                        return lo.wrapping_add(raw as $u) as $t;
                    }
                    panic!("cannot sample from empty range");
                }
                lo.wrapping_add((raw % span as u128) as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128,
);

impl SampleUniform for f64 {
    fn sample_one<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_one<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_one(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_one(rng, lo, hi, true)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the full/standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::standard(self) < p
    }

    /// A value from the standard distribution of `T` (`[0, 1)` for
    /// floats, full domain for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Stands in for upstream's ChaCha12-based `StdRng`; streams differ
    /// from upstream but are stable per seed, which is all the workspace
    /// relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, the only `seq` entry point the workspace uses.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0u8..4);
            assert!(v < 4);
            let w: i32 = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&w));
            let x: f64 = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&x));
            let y: u128 = rng.gen_range(0u128..(1u128 << 61) - 1);
            assert!(y < (1u128 << 61) - 1);
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
