//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (which render through one JSON tree
//! rather than upstream's visitor data model). Since the container has
//! no registry access, there is no `syn`/`quote`; the item is parsed
//! directly from its token stream, which is tractable because the
//! workspace only derives on:
//!
//! * named-field structs without generics (honoring `#[serde(default)]`
//!   and `#[serde(skip)]`),
//! * one-field tuple structs (serialized transparently, upstream's
//!   newtype behavior),
//! * enums whose variants are unit or one-field tuples (externally
//!   tagged, upstream's default).
//!
//! Anything else fails loudly with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

struct Variant {
    name: String,
    /// 0 = unit variant, 1 = one-field tuple variant.
    arity: usize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    generated
        .parse()
        .expect("serde_derive stand-in generated invalid Rust")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility until the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde stand-in: no struct/enum found".to_string()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, etc.
            }
            Some(TokenTree::Group(_)) => i += 1, // `pub(crate)` path part
            Some(_) => i += 1,
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in: missing item name".to_string()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in (vendor/serde_derive) does not support generics on `{name}`"
        ));
    }

    match tokens.get(i) {
        // struct Name { ... }  /  enum Name { ... }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            } else {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
        }
        // struct Name(...);
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err(format!("serde stand-in: unexpected parens after enum `{name}`"));
            }
            let arity = count_tuple_fields(g.stream());
            Ok(Item::TupleStruct { name, arity })
        }
        _ => Err(format!("serde stand-in: unsupported item shape for `{name}`")),
    }
}

/// Counts comma-separated fields at angle-bracket depth 0.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

/// Reads `#[serde(default)]` / `#[serde(skip)]` markers off one
/// attribute group.
fn serde_flags(group: &proc_macro::Group, default: &mut bool, skip: &mut bool) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let [TokenTree::Ident(id), TokenTree::Group(args)] = &inner[..] else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    for t in args.stream() {
        if let TokenTree::Ident(flag) = t {
            match flag.to_string().as_str() {
                "default" => *default = true,
                "skip" => *skip = true,
                other => panic!(
                    "serde stand-in (vendor/serde_derive) does not support #[serde({other})]"
                ),
            }
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let mut default = false;
        let mut skip = false;
        // Attributes before the field.
        while matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = body.get(i + 1) {
                serde_flags(g, &mut default, &mut skip);
            }
            i += 2;
        }
        // Visibility.
        while let Some(TokenTree::Ident(id)) = body.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(body.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(field_name)) = body.get(i) else {
            return Err("serde stand-in: expected field name".to_string());
        };
        let name = field_name.to_string();
        i += 1;
        if !matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("serde stand-in: expected ':' after field `{name}`"));
        }
        i += 1;
        // Skip the type up to a comma at angle depth 0.
        let mut depth = 0i32;
        while let Some(t) = body.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        while matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attribute
        }
        let Some(TokenTree::Ident(vname)) = body.get(i) else {
            return Err("serde stand-in: expected variant name".to_string());
        };
        let name = vname.to_string();
        i += 1;
        let arity = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in (vendor/serde_derive) does not support struct variant `{name}`"
                ));
            }
            _ => 0,
        };
        if arity > 1 {
            return Err(format!(
                "serde stand-in (vendor/serde_derive) supports at most one field per variant; `{name}` has {arity}"
            ));
        }
        if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde stand-in: discriminant on variant `{name}` unsupported"
            ));
        }
        if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__fields.push(({n:?}.to_string(), ::serde::Serialize::to_json_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::json::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::json::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_json_value(&self) -> ::serde::json::Value {{\n\
                             ::serde::Serialize::to_json_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_json_value(&self) -> ::serde::json::Value {{\n\
                             ::serde::json::Value::Array(vec![{items}])\n\
                         }}\n\
                     }}"
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v}(__x) => ::serde::json::Value::Object(vec![({v:?}.to_string(), ::serde::Serialize::to_json_value(__x))]),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::json::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::core::default::Default::default(),\n",
                        n = f.name
                    ));
                    continue;
                }
                let missing = if f.default {
                    "::core::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::core::result::Result::Err(::serde::json::DeError::new(concat!(\"missing field `\", {n:?}, \"` in {name}\")))",
                        n = f.name
                    )
                };
                inits.push_str(&format!(
                    "{n}: match ::serde::json::obj_get(__obj, {n:?}) {{\n\
                         ::core::option::Option::Some(__v) => ::serde::Deserialize::from_json_value(__v)?,\n\
                         ::core::option::Option::None => {missing},\n\
                     }},\n",
                    n = f.name
                ));
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::json::DeError::new(\"expected object for {name}\"))?;\n\
                         ::core::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::DeError> {{\n\
                             ::core::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let items = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::DeError> {{\n\
                             let __items = __v.as_array().ok_or_else(|| ::serde::json::DeError::new(\"expected array for {name}\"))?;\n\
                             if __items.len() != {arity} {{\n\
                                 return ::core::result::Result::Err(::serde::json::DeError::new(\"wrong arity for {name}\"));\n\
                             }}\n\
                             ::core::result::Result::Ok({name}({items}))\n\
                         }}\n\
                     }}"
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tuple_arms = String::new();
            for v in variants {
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "{v:?} => return ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                } else {
                    tuple_arms.push_str(&format!(
                        "{v:?} => return ::core::result::Result::Ok({name}::{v}(::serde::Deserialize::from_json_value(__val)?)),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(unused_variables, unused_mut, clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(__v: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::DeError> {{\n\
                         if let ::serde::json::Value::String(__s) = __v {{\n\
                             #[allow(clippy::match_single_binding)]\n\
                             match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         if let ::serde::json::Value::Object(__members) = __v {{\n\
                             if __members.len() == 1 {{\n\
                                 let (__tag, __val) = &__members[0];\n\
                                 #[allow(clippy::match_single_binding, unused_variables)]\n\
                                 match __tag.as_str() {{\n{tuple_arms}_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         ::core::result::Result::Err(::serde::json::DeError::new(\"no matching variant of {name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
