//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` harness shape and the
//! `Criterion` / `BenchmarkGroup` / `Bencher` API the workspace's benches
//! use, but replaces the statistics machinery with "run the closure a
//! bounded number of times, print the mean". Good enough to keep bench
//! targets compiling and executable without a registry; real performance
//! numbers should come from a network-enabled environment with upstream
//! criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver handed to each bench closure.
pub struct Bencher {
    /// Samples actually executed.
    iters: u64,
    /// Total elapsed across samples.
    elapsed: Duration,
    /// Sample budget per bench.
    target_iters: u64,
}

impl Bencher {
    /// Times `routine` over this bencher's sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the measurement.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.target_iters;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{label}: no samples");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("{label}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

fn run_one(label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        target_iters: sample_size,
    };
    f(&mut b);
    report(label, &b);
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendering just the parameter, upstream-style.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    /// An id with a function name and parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.text), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (formatting no-op here).
    pub fn finish(self) {}
}

/// Declares a group of bench functions, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, upstream-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
