//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! synchronization primitives exposing parking_lot's non-poisoning,
//! guard-returning API (`lock()` instead of `lock().unwrap()`).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (a panicking holder does
    /// not wedge the lock — parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
