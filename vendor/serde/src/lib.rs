//! Offline stand-in for `serde`.
//!
//! The build container has no crate-registry access, so the workspace
//! vendors a minimal serialization framework under the same names the
//! real crates export. Instead of serde's visitor-based data model, both
//! traits go through one concrete JSON tree ([`json::Value`]):
//!
//! * [`Serialize::to_json_value`] renders a value into the tree;
//! * [`Deserialize::from_json_value`] rebuilds a value from it.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) understand the shapes this workspace actually
//! uses: named structs (with `#[serde(default)]` / `#[serde(skip)]`),
//! transparent one-field newtype structs, and enums with unit or
//! one-field tuple variants, all without generics.
//!
//! Deliberate deviations from upstream, acceptable because nothing in the
//! workspace observes them: maps serialize as `[[key, value], ...]` pair
//! arrays (upstream emits objects with stringified keys), and `Deserialize`
//! has no `'de` lifetime parameter (no zero-copy borrowing).

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Renders `self` into the [`json::Value`] tree.
pub trait Serialize {
    /// The rendered tree.
    fn to_json_value(&self) -> json::Value;
}

/// Rebuilds `Self` from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the tree, failing with a message naming the mismatch.
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError>;
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Number(json::Number::U(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Number(json::Number::I(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Number(json::Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> json::Value {
        json::Value::Number(json::Number::F(*self as f64))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(x) => x.to_json_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Maps serialize as `[[key, value], ...]` so non-string keys round-trip
/// without a key-to-string convention.
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(
            self.iter()
                .map(|(k, v)| json::Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(
            self.iter()
                .map(|(k, v)| json::Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl Serialize for json::Value {
    fn to_json_value(&self) -> json::Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty : $get:ident),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
                let n = v
                    .$get()
                    .ok_or_else(|| json::DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| json::DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
de_int!(u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64);
de_int!(i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64);

impl Deserialize for f64 {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        v.as_f64().ok_or_else(|| json::DeError::new("expected f64"))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        v.as_bool().ok_or_else(|| json::DeError::new("expected bool"))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::DeError::new("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        v.as_array()
            .ok_or_else(|| json::DeError::new("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        Ok(Vec::<T>::from_json_value(v)?.into())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        let items = Vec::<T>::from_json_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| json::DeError::new(format!("expected array of {N}, got {got}")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| json::DeError::new("expected tuple array"))?;
                if items.len() != $len {
                    return Err(json::DeError::new(concat!(
                        "expected tuple of ",
                        stringify!($len)
                    )));
                }
                Ok(($($t::from_json_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

fn de_pairs<K: Deserialize, V: Deserialize>(
    v: &json::Value,
) -> Result<Vec<(K, V)>, json::DeError> {
    v.as_array()
        .ok_or_else(|| json::DeError::new("expected map pair array"))?
        .iter()
        .map(<(K, V)>::from_json_value)
        .collect()
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        Ok(de_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        Ok(de_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl Deserialize for json::Value {
    fn from_json_value(v: &json::Value) -> Result<Self, json::DeError> {
        Ok(v.clone())
    }
}
