//! The concrete JSON tree both stand-in traits serialize through, plus a
//! small parser/printer pair. `serde_json` re-exports [`Value`] and wraps
//! the parser/printer behind upstream's function names.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any numeric literal.
    Number(Number),
    /// A string literal.
    String(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }` — insertion-ordered, duplicate keys unchecked.
    Object(Vec<(String, Value)>),
}

/// A JSON number, remembering how it was produced so integers round-trip
/// exactly.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative (or signed-source) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(x) => Some(x),
            Number::I(x) => u64::try_from(x).ok(),
            Number::F(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::F(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(x) => i64::try_from(x).ok(),
            Number::I(x) => Some(x),
            Number::F(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(x) => x as f64,
            Number::I(x) => x as f64,
            Number::F(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (Some(_), None) | (None, Some(_)) => {}
            (None, None) => {}
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

macro_rules! eq_num {
    ($($t:ty => $ctor:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == $ctor(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(
    u8 => |x| Number::U(x as u64),
    u16 => |x| Number::U(x as u64),
    u32 => |x| Number::U(x as u64),
    u64 => Number::U,
    usize => |x| Number::U(x as u64),
    i8 => |x| Number::I(x as i64),
    i16 => |x| Number::I(x as i64),
    i32 => |x| Number::I(x as i64),
    i64 => Number::I,
    f64 => Number::F,
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member lookup; missing members and non-objects index to
    /// `Null`, matching upstream.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Value {
    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Exact `u64`, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Exact `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(Number::U(x)) => out.push_str(&x.to_string()),
            Value::Number(Number::I(x)) => out.push_str(&x.to_string()),
            Value::Number(Number::F(x)) => {
                if x.is_finite() {
                    // Keep a decimal marker so floats parse back as floats.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                } else {
                    // JSON has no Inf/NaN; upstream errors, artifacts here
                    // only ever hold finite numbers. Emit null defensively.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                    items[i].write(out, ind)
                });
            }
            Value::Object(members) => {
                write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                    write_escaped(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, ind);
                });
            }
        }
    }

    /// Compact rendering.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Two-space-indented rendering.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

/// Deserialization failure.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Member lookup used by generated `Deserialize` impls.
pub fn obj_get<'a>(members: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, DeError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DeError::new(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), DeError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(DeError::new(format!(
            "expected '{}' at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(DeError::new("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(DeError::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(DeError::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, DeError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(DeError::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, DeError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(DeError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| DeError::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| DeError::new("bad \\u escape"))?;
                        // Surrogate pairs unsupported; BMP scalars only.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| DeError::new("non-scalar \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(DeError::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| DeError::new("invalid utf-8"))?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number text");
    if text.is_empty() || text == "-" {
        return Err(DeError::new(format!("expected value at byte {start}")));
    }
    let n = if float {
        Number::F(
            text.parse::<f64>()
                .map_err(|_| DeError::new(format!("bad number '{text}'")))?,
        )
    } else if let Some(stripped) = text.strip_prefix('-') {
        // Parse via the magnitude so i64::MIN still round-trips.
        let _ = stripped;
        Number::I(
            text.parse::<i64>()
                .map_err(|_| DeError::new(format!("bad number '{text}'")))?,
        )
    } else {
        Number::U(
            text.parse::<u64>()
                .map_err(|_| DeError::new(format!("bad number '{text}'")))?,
        )
    };
    Ok(Value::Number(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U(123))),
            ("b".to_string(), Value::String("x\"y\n".to_string())),
            (
                "c".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Number(Number::F(1.5))]),
            ),
            ("d".to_string(), Value::Number(Number::I(-7))),
        ]);
        let compact = v.render_compact();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_keeps_marker() {
        assert_eq!(Value::Number(Number::F(3.0)).render_compact(), "3.0");
        let back = parse("3.0").unwrap();
        assert!(matches!(back, Value::Number(Number::F(_))));
    }

    #[test]
    fn index_and_eq() {
        let v = parse(r#"{"arrivals": 600, "name": "abc"}"#).unwrap();
        assert_eq!(v["arrivals"], 600);
        assert_eq!(v["name"], "abc");
        assert_eq!(v["missing"], Value::Null);
    }
}
