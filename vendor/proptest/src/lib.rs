//! Offline stand-in for `proptest`.
//!
//! Runs each property over `cases` deterministically seeded random
//! inputs (seed derived from the test name, so failures reproduce).
//! There is no shrinking and no persistence — the workspace's properties
//! are invariant checks whose counterexamples are already small.
//!
//! Covered surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range strategies, tuple strategies,
//! `collection::vec`, `any::<T>()`, `prop::bool::ANY`, and
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// Per-test deterministic random source.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// A generator seeded from the test name (FNV-1a), so every test has
    /// a stable but distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }
}

/// Execution knobs; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The produced input type.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a default "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(&mut rng.0) as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(&mut rng.0) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric; full bit-pattern floats (NaN/Inf) would
        // break most numeric properties and upstream's `any` also biases
        // toward ordinary values.
        rng.0.gen_range(-1e12f64..1e12)
    }
}

/// Strategy form of [`Arbitrary`]; construct through [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod bool {
    //! The `prop::bool` namespace.

    /// Uniform `bool` strategy.
    pub struct BoolAny;

    /// Uniform `bool`, upstream's `prop::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl crate::Strategy for BoolAny {
        type Value = core::primitive::bool;

        fn sample(&self, rng: &mut crate::TestRng) -> Self::Value {
            crate::Arbitrary::arbitrary(rng)
        }
    }
}

/// Length bounds for [`collection::vec`].
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy, upstream's `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = (self.size.min..self.size.max_exclusive).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts within a property (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Everything a property-test module needs, upstream-style.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled values respect their strategy bounds.
        #[test]
        fn ranges_and_vecs(x in 1u64..10, mut v in prop::collection::vec((0u8..4, prop::bool::ANY), 2..6), y in any::<u64>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            v.push((0, true));
            for (a, _) in v {
                prop_assert!(a < 4);
            }
            let _ = y;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(
            crate::Strategy::sample(&(0u64..1000), &mut a),
            crate::Strategy::sample(&(0u64..1000), &mut b)
        );
    }
}
