//! Offline stand-in for `crossbeam`, covering only `channel::bounded`
//! with `send` / `try_send` / `recv` / `try_recv` as the workspace's
//! sharded engine and examples use it. Backed by
//! `std::sync::mpsc::sync_channel`, which has the same bounded,
//! multi-producer single-consumer semantics for this use.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded MPSC channel.

    use std::sync::mpsc;

    /// Sending half; clone freely across producer threads.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error from [`Sender::try_send`]: channel full or disconnected.
    #[derive(Debug)]
    pub struct TrySendError<T>(pub T);

    /// Error from [`Sender::send`]: the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> TrySendError<T> {
        /// Recovers the value that could not be sent.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    /// Error from [`Receiver::recv`]: all senders dropped.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`]: nothing buffered right now, or
    /// every sender dropped.
    #[derive(Debug)]
    pub struct TryRecvError;

    impl<T> Sender<T> {
        /// Non-blocking send; fails when the buffer is full or the
        /// receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) | mpsc::TrySendError::Disconnected(v) => {
                    TrySendError(v)
                }
            })
        }

        /// Blocking send; waits while the buffer is full, fails only when
        /// the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; fails once every sender is dropped and the
        /// buffer has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; fails when nothing is buffered.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|_| TryRecvError)
        }
    }

    /// A channel buffering at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn blocking_send_waits_for_room() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send(2).is_ok());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(producer.join().unwrap(), "send completes once drained");
        drop(rx);
    }

    #[test]
    fn blocking_send_fails_without_receiver() {
        let (tx, rx) = channel::bounded::<u32>(4);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_try_send_and_drain() {
        let (tx, rx) = channel::bounded::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(tx.try_send(3).is_err(), "third send exceeds capacity");
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "disconnected after senders dropped");
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (tx, rx) = channel::bounded::<u32>(2);
        assert!(rx.try_recv().is_err(), "empty channel");
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(tx.try_send(1).err().map(|e| e.into_inner()).is_none());
        drop(tx);
        assert!(rx.try_recv().is_ok(), "buffered value survives sender drop");
        assert!(rx.try_recv().is_err(), "then disconnected");
    }
}
