//! Offline stand-in for `serde_json`, re-exporting the vendored serde's
//! JSON tree under upstream's names and providing `to_string`,
//! `to_string_pretty`, `from_str`, and the `json!` macro.

#![forbid(unsafe_code)]

pub use serde::json::{DeError as Error, Number, Value};
use serde::{Deserialize, Serialize};

/// A `Result` specialized to this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Compact JSON text for `value`.
///
/// Infallible in practice for this stand-in; the `Result` mirrors
/// upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_compact())
}

/// Two-space-indented JSON text for `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_pretty())
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_json_value(&serde::json::parse(s)?)
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports the forms this workspace uses: `null`, object literals with
/// string-literal keys and expression values, array literals, and bare
/// expressions. (Upstream additionally allows nested object literals as
/// values; here a nested object must be written as an inner `json!`.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects() {
        let policy = "MSketch";
        let v = json!({
            "policy": policy,
            "output": 5u64,
            "rate": 0.5,
            "flag": true,
            "label": format!("x{}", 1),
            "cond": if policy.len() > 3 { 1.0 } else { 0.0 },
        });
        assert_eq!(v["policy"], "MSketch");
        assert_eq!(v["output"], 5);
        assert_eq!(v["flag"], true);
        assert_eq!(v["label"], "x1");
        assert_eq!(v["cond"], 1.0);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["output"], 5);
    }

    #[test]
    fn primitive_round_trip() {
        let s = to_string(&123u64).unwrap();
        assert_eq!(s, "123");
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, 123);
    }
}
